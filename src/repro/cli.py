"""Command-line interface for the V-LoRA reproduction.

Usage (installed module)::

    python -m repro systems
    python -m repro models
    python -m repro serve --system v-lora --workload retrieval --rate 8
    python -m repro compare --rates 4,8,12
    python -m repro fuse --items image_classification:4:0.9,video_classification:2:0.88
    python -m repro tiling-search --dim 4096 --rank 64
    python -m repro trace generate --out /tmp/trace.jsonl --rate 6
    python -m repro trace stats --path /tmp/trace.jsonl

Every command prints plain text and returns a process exit code; all
randomness is seeded via ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.compare import SystemComparison
from repro.analysis.sweep import SweepRunner
from repro.analysis.textplot import bar_chart, line_chart
from repro.core.builder import SYSTEM_NAMES, SystemBuilder
from repro.generation.fusion import KnowledgeFusion, KnowledgeItem, OracleEvaluator
from repro.hardware.gpu import get_gpu, list_gpus
from repro.models.config import get_model, list_models
from repro.workloads.replay import load_trace, save_trace, trace_stats
from repro.workloads.retrieval import RetrievalWorkload
from repro.workloads.video import VideoAnalyticsWorkload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="V-LoRA reproduction toolbox"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list serving systems and their parts")
    sub.add_parser("models", help="list LMM configurations (Table 2)")

    serve = sub.add_parser("serve", help="run one serving simulation")
    _common_serving_args(serve)
    serve.add_argument("--system", default="v-lora", choices=SYSTEM_NAMES)
    serve.add_argument("--core", default="object", choices=("object", "soa"),
                       help="engine core: 'object' (default) or the "
                            "vectorized 'soa' array core (single-GPU only; "
                            "identical metrics, much faster on big traces)")
    serve.add_argument("--trace-out", default=None,
                       help="save the generated workload as a JSONL trace")
    serve.add_argument("--trace-in", default=None,
                       help="replay a JSONL trace instead of generating")
    serve.add_argument("--json", action="store_true",
                       help="print the metrics summary as JSON")
    serve.add_argument("--profile", type=int, nargs="?", const=20,
                       default=None, metavar="N",
                       help="cProfile the run and print the top N "
                            "functions by cumulative time (default 20)")
    serve.add_argument("--no-cost-cache", action="store_true",
                       help="disable iteration-cost memoization (the "
                            "reference cost path; results are identical)")
    fault = serve.add_argument_group(
        "fault injection (docs/FAULTS.md; rates are events per sim-second)"
    )
    fault.add_argument("--fault-seed", type=int, default=0)
    fault.add_argument("--swap-fail-rate", type=float, default=0.0,
                       help="adapter swap-in failure windows per second")
    fault.add_argument("--swap-slow-rate", type=float, default=0.0,
                       help="adapter swap slowdown windows per second")
    fault.add_argument("--kv-pressure-rate", type=float, default=0.0,
                       help="transient KV-memory pressure windows per second")
    fault.add_argument("--engine-slow-rate", type=float, default=0.0,
                       help="GPU straggler windows per second")
    fault.add_argument("--burst-rate", type=float, default=0.0,
                       help="load-burst windows per second (arrivals are "
                            "time-compressed 3-8x inside each window)")
    fault.add_argument("--partition-rate", type=float, default=0.0,
                       help="NETWORK_PARTITION windows/s per engine "
                            "(heartbeats + completions withheld, "
                            "delivered on heal; needs --detector to "
                            "be observable)")
    fault.add_argument("--heartbeat-loss-rate", type=float, default=0.0,
                       help="HEARTBEAT_LOSS windows/s per engine "
                            "(heartbeats dropped, work unaffected)")
    fault.add_argument("--host-fail-rate", type=float, default=0.0,
                       help="per-host probability/s of a HOST_FAIL "
                            "killing every replica on the host "
                            "(needs --num-hosts)")
    fault.add_argument("--scale-stall-rate", type=float, default=0.0,
                       help="slow-provisioning windows per second (replica "
                            "warm-up is 2-6x slower inside each window; "
                            "only meaningful with --autoscale)")
    fault.add_argument("--deadline-factor", type=float, default=None,
                       help="abort requests older than factor x their SLO")
    fault.add_argument("--slo", type=float, default=None,
                       help="attach this latency SLO (seconds) to every "
                            "generated request")
    fault.add_argument("--gpu-slots", type=int, default=None,
                       help="GPU adapter slots (default: all adapters "
                            "resident; lower it to exercise swaps)")
    overload = serve.add_argument_group(
        "overload protection (docs/FAULTS.md; all default-off)"
    )
    overload.add_argument("--admission-rate", type=float, default=None,
                          help="token-bucket admission rate in tokens "
                               "(input+output) per second")
    overload.add_argument("--admission-burst", type=float, default=None,
                          help="token-bucket capacity (default: one second "
                               "of refill)")
    overload.add_argument("--admission-queue-limit", type=int, default=None,
                          help="reject arrivals once this many requests "
                               "are live in the engine")
    overload.add_argument("--admission-kv-headroom", type=float, default=None,
                          help="reject arrivals while the KV free-block "
                               "fraction is below this floor")
    overload.add_argument("--admission-slo-reject", action="store_true",
                          help="reject deadline-carrying arrivals whose "
                               "deadline is already unmeetable (needs "
                               "--slo and --deadline-factor)")
    overload.add_argument("--brownout", action="store_true",
                          help="enable brownout degraded-service tiers "
                               "(shed low priority, cap decodes, force "
                               "merged mode)")
    overload.add_argument("--brownout-queue-high", type=int, default=None,
                          help="queue depth that counts as pressure 1.0 "
                               "(default 64; implies --brownout)")
    overload.add_argument("--breaker-cooldown", type=float, default=None,
                          help="re-probe a quarantined adapter after this "
                               "many seconds (default: quarantine is "
                               "permanent)")
    cluster = serve.add_argument_group(
        "multi-GPU / elastic autoscaling (docs/AUTOSCALING.md; "
        "all default-off — the default run is a single static engine)"
    )
    cluster.add_argument("--num-gpus", type=int, default=1,
                         help="replica count (static) or the initial "
                              "replica count (with --autoscale)")
    cluster.add_argument("--dispatch", default="least-loaded",
                         choices=("least-loaded", "round-robin",
                                  "adapter-affinity", "locality"),
                         help="inter-GPU dispatch policy ('locality' = "
                              "cache-state-aware placement, "
                              "docs/PLACEMENT.md)")
    cluster.add_argument("--disagg", action="store_true",
                         help="disaggregated serving: split the fleet into "
                              "a prefill pool and a decode pool with a "
                              "priced KV hand-off between them "
                              "(docs/DISAGGREGATION.md)")
    cluster.add_argument("--prefill-replicas", type=int, default=1,
                         help="prefill-pool size with --disagg (default 1)")
    cluster.add_argument("--decode-replicas", type=int, default=1,
                         help="decode-pool size with --disagg (default 1)")
    cluster.add_argument("--disagg-kv-target", type=float, default=0.75,
                         help="decode-pool KV-residency scaling target in "
                              "(0, 1] (with --disagg --autoscale; the "
                              "prefill pool scales on queue depth as "
                              "usual; default 0.75)")
    cluster.add_argument("--placement-hot-watermark", type=float,
                         default=0.03,
                         help="popularity share above which 'locality' "
                              "replicates an adapter")
    cluster.add_argument("--placement-hot-copies", type=int, default=2,
                         help="ring homes a hot adapter is served from")
    cluster.add_argument("--placement-cold-watermark", type=float,
                         default=0.0,
                         help="popularity share below which resident "
                              "adapters are demoted off non-home "
                              "replicas (0 = off)")
    cluster.add_argument("--placement-prefetch-top-k", type=int, default=8,
                         help="hot adapters a newly spawned replica "
                              "prefetches during warm-up")
    cluster.add_argument("--placement-interval", type=float, default=0.5,
                         help="placement rebalance epoch length in sim "
                              "seconds")
    cluster.add_argument("--autoscale", action="store_true",
                         help="enable elastic replica autoscaling "
                              "(WARMING/ACTIVE/DRAINING lifecycle)")
    cluster.add_argument("--autoscale-min", type=int, default=1,
                         help="minimum ACTIVE+WARMING replicas")
    cluster.add_argument("--autoscale-max", type=int, default=4,
                         help="maximum live replicas")
    cluster.add_argument("--autoscale-interval", type=float, default=0.5,
                         help="control-loop epoch length in sim seconds")
    cluster.add_argument("--autoscale-target-queue", type=float, default=8.0,
                         help="EWMA live requests per replica the policy "
                              "holds (scale up above, down below a "
                              "fraction of it)")
    cluster.add_argument("--autoscale-slo-floor", type=float, default=None,
                         help="also scale up when smoothed SLO attainment "
                              "drops below this fraction (needs --slo)")
    cluster.add_argument("--autoscale-spinup", type=float, default=0.5,
                         help="flat engine-provisioning part of a new "
                              "replica's cold start, seconds")
    cluster.add_argument("--autoscale-drain-timeout", type=float,
                         default=30.0,
                         help="re-home a draining replica's leftover work "
                              "after this many seconds")
    cluster.add_argument("--detector", action="store_true",
                         help="replace the omniscient failure oracle "
                              "with phi-accrual heartbeat detection and "
                              "lease-fenced exactly-once dispatch "
                              "(docs/FAULTS.md)")
    cluster.add_argument("--phi-suspect", type=float, default=2.0,
                         help="phi threshold to SUSPECT a replica "
                              "(drained, not killed)")
    cluster.add_argument("--phi-confirm", type=float, default=8.0,
                         help="phi threshold to CONFIRM a replica dead "
                              "(lease seized, work re-dispatched)")
    cluster.add_argument("--heartbeat-interval", type=float, default=0.25,
                         help="replica heartbeat cadence in sim seconds")
    cluster.add_argument("--num-hosts", type=int, default=0,
                         help="spread replicas over this many failure "
                              "domains (enables HOST_FAIL targeting; "
                              "0 = no correlated domains)")

    tail = serve.add_argument_group(
        "tail-tolerant dispatch (docs/FAULTS.md; all default-off — "
        "hedging needs --num-gpus >= 2)"
    )
    tail.add_argument("--hedge", action="store_true",
                      help="dispatch a second copy of a request stuck "
                           "past the observed latency percentile; first "
                           "completion wins, the loser is fenced")
    tail.add_argument("--hedge-percentile", type=float, default=95.0,
                      help="per-priority completion-latency percentile "
                           "that arms the hedge threshold")
    tail.add_argument("--hedge-after", type=float, default=None,
                      help="fixed hedge threshold in seconds (overrides "
                           "the percentile tracker; implies --hedge)")
    tail.add_argument("--retry-budget", type=float, default=None,
                      metavar="RATIO",
                      help="cap retries (hedges, swap retries, failover "
                           "requeues) to this fraction of fresh "
                           "dispatches per priority class (e.g. 0.1)")
    tail.add_argument("--retry-budget-burst", type=float, default=20.0,
                      help="token-bucket depth of the retry budget")
    tail.add_argument("--give-up-after", type=float, default=None,
                      help="hard per-request deadline in seconds from "
                           "arrival (unified timeout policy)")

    compare = sub.add_parser(
        "compare", help="sweep request rates across all systems"
    )
    _common_serving_args(compare)
    compare.add_argument("--rates", default="4,8,12",
                         help="comma-separated request rates")
    compare.add_argument("--systems", default=",".join(
        ("v-lora", "s-lora", "punica", "dlora")))
    compare.add_argument("--parallel", type=int, default=None, metavar="N",
                         help="run sweep cells on N worker processes "
                              "(identical results to the serial sweep)")

    fuse = sub.add_parser(
        "fuse", help="plan adapter generation with the fusion oracle"
    )
    fuse.add_argument(
        "--items", required=True,
        help="spec like family:count:floor[,family:count:floor...]",
    )

    tiling = sub.add_parser("tiling-search",
                            help="run Algorithm 2 and summarize")
    tiling.add_argument("--dim", type=int, default=4096)
    tiling.add_argument("--rank", type=int, default=64)
    tiling.add_argument("--gpu", default="A100-80GB", choices=list_gpus())

    kernels = sub.add_parser(
        "kernels", help="prebuild or inspect persistent ATMM tiling tables"
    )
    kernels_sub = kernels.add_subparsers(dest="kernels_command",
                                         required=True)
    ksearch = kernels_sub.add_parser(
        "search", help="run the tiling search and persist the table"
    )
    ksearch.add_argument("--gpu", default="A100-80GB", choices=list_gpus())
    ksearch.add_argument("--dims", default="4096",
                         help="comma-separated hidden dims")
    ksearch.add_argument("--ranks", default="16,32,64,128",
                         help="comma-separated LoRA ranks")
    ksearch.add_argument("--max-m", type=int, default=16384)
    ksearch.add_argument("--full", action="store_true",
                         help="search the full config space (not coarse)")
    ksearch.add_argument("--store-dir", default=None,
                         help="table store directory (default: "
                              "$REPRO_KERNEL_STORE_DIR or the user cache)")
    ksearch.add_argument("--force", action="store_true",
                         help="re-search even if the store has the table")
    ksearch.add_argument("--json", action="store_true",
                         help="print machine-readable summary")
    kinspect = kernels_sub.add_parser(
        "inspect", help="list the tables in a store directory"
    )
    kinspect.add_argument("--store-dir", default=None)
    kinspect.add_argument("--json", action="store_true")

    report = sub.add_parser(
        "report", help="summarize results/ written by the benches"
    )
    report.add_argument("--results-dir", default="results")

    trace = sub.add_parser("trace", help="generate or inspect trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser("generate")
    _common_serving_args(gen)
    gen.add_argument("--out", required=True)
    stats = trace_sub.add_parser("stats")
    stats.add_argument("--path", required=True)
    return parser


def _common_serving_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="retrieval",
                        choices=("retrieval", "video", "diurnal"))
    parser.add_argument("--trough", type=float, default=None,
                        help="diurnal trough rate in requests/s "
                             "(default: rate / 5; diurnal workload only)")
    parser.add_argument("--period", type=float, default=None,
                        help="diurnal period in seconds "
                             "(default: duration / 2; diurnal only)")
    parser.add_argument("--model", default="Qwen-VL-7B",
                        choices=list_models())
    parser.add_argument("--rate", type=float, default=6.0,
                        help="requests/s (retrieval) or streams (video)")
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--adapters", type=int, default=8)
    parser.add_argument("--skew", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=0)


def _parse_rates(text: str) -> Optional[List[float]]:
    """Parse a comma-separated rate list; None on malformed input."""
    try:
        rates = [float(x) for x in text.split(",") if x.strip()]
    except ValueError:
        return None
    if not rates or any(r <= 0 for r in rates):
        return None
    return rates


def _make_fault_injector(args) -> "Optional[object]":
    from repro.runtime.faults import FaultInjector

    rates = (args.swap_fail_rate, args.swap_slow_rate,
             args.kv_pressure_rate, args.engine_slow_rate,
             getattr(args, "burst_rate", 0.0),
             getattr(args, "scale_stall_rate", 0.0),
             getattr(args, "partition_rate", 0.0),
             getattr(args, "heartbeat_loss_rate", 0.0),
             getattr(args, "host_fail_rate", 0.0))
    if all(r <= 0 for r in rates):
        return None
    adapter_ids = [f"lora-{i}" for i in range(args.adapters)]
    num_gpus = getattr(args, "num_gpus", 1)
    engine_ids = (tuple(f"gpu-{i}" for i in range(num_gpus))
                  if num_gpus > 1 else ("engine-0",))
    num_hosts = getattr(args, "num_hosts", 0)
    # Faults must be able to land after the arrival window too (the
    # queue drains past --duration under load).
    return FaultInjector.random(
        horizon_s=args.duration * 4,
        seed=args.fault_seed,
        adapter_ids=adapter_ids,
        engine_ids=engine_ids,
        swap_fail_rate=args.swap_fail_rate,
        swap_slow_rate=args.swap_slow_rate,
        kv_pressure_rate=args.kv_pressure_rate,
        engine_slow_rate=args.engine_slow_rate,
        load_burst_rate=getattr(args, "burst_rate", 0.0),
        scale_stall_rate=getattr(args, "scale_stall_rate", 0.0),
        partition_rate=getattr(args, "partition_rate", 0.0),
        heartbeat_loss_rate=getattr(args, "heartbeat_loss_rate", 0.0),
        host_fail_rate=getattr(args, "host_fail_rate", 0.0),
        host_ids=tuple(f"host-{i}" for i in range(num_hosts)),
    )


def _make_overload_configs(args):
    """(admission, brownout, breaker) configs from serve flags.

    Raises ``ValueError`` on malformed knob values; all three are
    ``None`` when no overload flag was given.
    """
    from repro.runtime.overload import (
        AdmissionConfig,
        BreakerConfig,
        BrownoutConfig,
    )

    if args.admission_burst is not None and args.admission_rate is None:
        raise ValueError("--admission-burst requires --admission-rate")
    admission = None
    if (args.admission_rate is not None
            or args.admission_queue_limit is not None
            or args.admission_kv_headroom is not None
            or args.admission_slo_reject):
        admission = AdmissionConfig(
            rate_tokens_per_s=args.admission_rate,
            burst_tokens=args.admission_burst,
            max_queue_depth=args.admission_queue_limit,
            min_kv_headroom=args.admission_kv_headroom,
            slo_reject=args.admission_slo_reject,
        )
    brownout = None
    if args.brownout or args.brownout_queue_high is not None:
        if args.brownout_queue_high is not None:
            brownout = BrownoutConfig(queue_high=args.brownout_queue_high)
        else:
            brownout = BrownoutConfig()
    breaker = None
    if args.breaker_cooldown is not None:
        breaker = BreakerConfig(cooldown_s=args.breaker_cooldown)
    return admission, brownout, breaker


def _make_tail_configs(args):
    """(hedge, retry_budget, timeout_policy) from serve flags.

    Raises ``ValueError`` on malformed knob values; all three are
    ``None`` when no tail-tolerance flag was given.
    """
    from repro.runtime.hedging import (
        HedgeConfig,
        RetryBudget,
        RetryBudgetConfig,
        TimeoutPolicy,
    )

    timeout_policy = None
    if args.hedge_after is not None or args.give_up_after is not None:
        timeout_policy = TimeoutPolicy(
            hedge_after_s=args.hedge_after,
            give_up_after_s=args.give_up_after,
        )
    hedge = None
    if args.hedge or args.hedge_after is not None:
        hedge = HedgeConfig(percentile=args.hedge_percentile)
    retry_budget = None
    if args.retry_budget is not None:
        retry_budget = RetryBudget(RetryBudgetConfig(
            ratio=args.retry_budget, burst=args.retry_budget_burst,
        ))
    return hedge, retry_budget, timeout_policy


def _make_workload(args, system: str) -> list:
    builder_ids = [f"lora-{i}" for i in range(args.adapters)]
    heads = system == "v-lora"
    slo = getattr(args, "slo", None)
    if args.workload == "retrieval":
        return RetrievalWorkload(
            builder_ids, rate_rps=args.rate, duration_s=args.duration,
            top_adapter_share=args.skew, use_task_heads=heads,
            slo_s=slo, seed=args.seed,
        ).generate()
    if args.workload == "diurnal":
        from repro.workloads.diurnal import diurnal_burst_trace

        trough = args.trough if args.trough is not None else args.rate / 5
        period = args.period if args.period is not None else args.duration / 2
        return diurnal_burst_trace(
            builder_ids, peak_rps=args.rate, trough_rps=trough,
            period_s=period, duration_s=args.duration,
            top_adapter_share=args.skew, use_task_heads=heads,
            slo_s=slo, seed=args.seed,
        )
    requests = VideoAnalyticsWorkload(
        builder_ids, num_streams=max(1, int(args.rate)),
        duration_s=args.duration, use_task_heads=heads, seed=args.seed,
    ).generate()
    if slo is not None:
        for r in requests:
            r.slo_s = slo
    return requests


def cmd_systems(_args) -> int:
    print("serving systems (see repro.core.builder for the part matrix):")
    parts = {
        "v-lora": "ATMM + Algorithm 1 + swift switcher + prefix reuse",
        "s-lora": "S-LoRA kernel + unmerged-only FCFS",
        "punica": "Punica kernel + unmerged-only FCFS (per-request prefill)",
        "dlora": "Einsum + merged/unmerged switching (slow switcher)",
        "merge-only": "ATMM + merged-only (ablation)",
        "unmerge-only": "ATMM + unmerged-only (ablation)",
    }
    for name in SYSTEM_NAMES:
        print(f"  {name:<14} {parts[name]}")
    return 0


def cmd_models(_args) -> int:
    print(f"{'model':<16}{'layers':>8}{'dim':>8}{'params':>10}{'weights':>10}")
    for name in list_models():
        m = get_model(name)
        print(f"{m.name:<16}{m.num_layers:>8}{m.hidden_dim:>8}"
              f"{m.total_params / 1e9:>9.2f}B"
              f"{m.weight_bytes / 2**30:>9.1f}G")
    return 0


def cmd_serve(args) -> int:
    if args.deadline_factor is not None and args.deadline_factor <= 0:
        print(f"--deadline-factor must be positive, got {args.deadline_factor}",
              file=sys.stderr)
        return 2
    fault_rates = (args.swap_fail_rate, args.swap_slow_rate,
                   args.kv_pressure_rate, args.engine_slow_rate,
                   args.burst_rate, args.partition_rate,
                   args.heartbeat_loss_rate, args.host_fail_rate)
    if any(r < 0 for r in fault_rates):
        print("fault rates must be >= 0", file=sys.stderr)
        return 2
    if args.num_hosts < 0:
        print(f"--num-hosts must be >= 0, got {args.num_hosts}",
              file=sys.stderr)
        return 2
    try:
        admission, brownout, breaker = _make_overload_configs(args)
    except ValueError as exc:
        print(f"bad overload-protection flags: {exc}", file=sys.stderr)
        return 2
    try:
        hedge, retry_budget, timeout_policy = _make_tail_configs(args)
    except ValueError as exc:
        print(f"bad tail-tolerance flags: {exc}", file=sys.stderr)
        return 2
    if args.disagg:
        if args.prefill_replicas < 1 or args.decode_replicas < 1:
            print("--prefill-replicas and --decode-replicas must be >= 1",
                  file=sys.stderr)
            return 2
        total = args.prefill_replicas + args.decode_replicas
        if args.num_gpus not in (1, total):
            # 1 is argparse's default: treat it as "derive from the pools".
            print(f"--num-gpus {args.num_gpus} disagrees with "
                  f"--prefill-replicas + --decode-replicas = {total}; "
                  f"drop --num-gpus (it is derived) or make them match",
                  file=sys.stderr)
            return 2
        args.num_gpus = total
    if hedge is not None and args.num_gpus < 2 and not args.autoscale:
        print("--hedge needs a second replica to race against "
              "(--num-gpus >= 2 or --autoscale)", file=sys.stderr)
        return 2
    if args.slo is not None and args.slo <= 0:
        print(f"--slo must be positive, got {args.slo}", file=sys.stderr)
        return 2
    if args.gpu_slots is not None and args.gpu_slots <= 0:
        print(f"--gpu-slots must be positive, got {args.gpu_slots}",
              file=sys.stderr)
        return 2
    if args.profile is not None and args.profile <= 0:
        print(f"--profile must be positive, got {args.profile}",
              file=sys.stderr)
        return 2
    if args.num_gpus < 1:
        print(f"--num-gpus must be >= 1, got {args.num_gpus}",
              file=sys.stderr)
        return 2
    injector = _make_fault_injector(args)
    builder = SystemBuilder(model=get_model(args.model),
                            num_adapters=args.adapters,
                            gpu_adapter_slots=args.gpu_slots,
                            jitter_seed=args.seed,
                            fault_injector=injector,
                            deadline_slo_factor=args.deadline_factor,
                            enable_cost_cache=not args.no_cost_cache,
                            admission=admission,
                            brownout=brownout,
                            breaker=breaker,
                            timeout_policy=timeout_policy)
    if args.dispatch == "locality" and args.num_gpus < 2 \
            and not args.autoscale:
        print("--dispatch locality needs a fleet to place over "
              "(--num-gpus >= 2 or --autoscale)", file=sys.stderr)
        return 2
    if (args.num_gpus > 1 or args.autoscale or args.detector
            or hedge is not None or args.disagg):
        if args.core != "object":
            print("--core soa is single-GPU only (no --num-gpus/--autoscale/"
                  "--detector/--disagg)", file=sys.stderr)
            return 2
        from repro.runtime import (
            AdapterPlacement,
            AutoscaleConfig,
            Autoscaler,
            DisaggConfig,
            FailureDetector,
            FailureDetectorConfig,
            MultiGPUServer,
            PlacementConfig,
        )

        scaler = None
        if args.autoscale:
            try:
                scaler = Autoscaler(AutoscaleConfig(
                    min_replicas=args.autoscale_min,
                    max_replicas=args.autoscale_max,
                    interval_s=args.autoscale_interval,
                    target_queue_per_replica=args.autoscale_target_queue,
                    slo_floor=args.autoscale_slo_floor,
                    spinup_s=args.autoscale_spinup,
                    drain_timeout_s=args.autoscale_drain_timeout,
                ))
            except ValueError as exc:
                print(f"bad autoscale flags: {exc}", file=sys.stderr)
                return 2
        detector = None
        if args.detector:
            try:
                detector = FailureDetector(FailureDetectorConfig(
                    heartbeat_interval_s=args.heartbeat_interval,
                    phi_suspect=args.phi_suspect,
                    phi_confirm=args.phi_confirm,
                ))
            except ValueError as exc:
                print(f"bad detector flags: {exc}", file=sys.stderr)
                return 2
        placement = None
        if args.dispatch == "locality":
            try:
                placement_cfg = PlacementConfig(
                    hot_watermark=args.placement_hot_watermark,
                    hot_copies=args.placement_hot_copies,
                    cold_watermark=args.placement_cold_watermark,
                    prefetch_top_k=args.placement_prefetch_top_k,
                    interval_s=args.placement_interval,
                )
            except ValueError as exc:
                print(f"bad placement flags: {exc}", file=sys.stderr)
                return 2
            builder.placement = placement_cfg
            placement = AdapterPlacement(placement_cfg)
        disagg = None
        if args.disagg:
            from dataclasses import replace as dc_replace

            prefill_scale = decode_scale = None
            if scaler is not None:
                # --disagg --autoscale means per-pool scalers: the
                # prefill pool keeps the queue-depth policy; the decode
                # pool scales on fleet KV residency instead.
                prefill_scale = scaler.config
                try:
                    decode_scale = dc_replace(
                        scaler.config,
                        target_utilization=args.disagg_kv_target,
                    )
                except ValueError as exc:
                    print(f"bad --disagg-kv-target: {exc}", file=sys.stderr)
                    return 2
                scaler = None
            try:
                disagg = DisaggConfig(
                    prefill_replicas=args.prefill_replicas,
                    decode_replicas=args.decode_replicas,
                    prefill_autoscale=prefill_scale,
                    decode_autoscale=decode_scale,
                )
            except ValueError as exc:
                print(f"bad disagg flags: {exc}", file=sys.stderr)
                return 2
        engine = MultiGPUServer.replicate(
            lambda: builder.build(args.system), args.num_gpus,
            dispatch=args.dispatch, autoscaler=scaler,
            detector=detector, num_hosts=args.num_hosts,
            hedge=hedge, retry_budget=retry_budget,
            timeout_policy=timeout_policy, placement=placement,
            disagg=disagg,
        )
    else:
        try:
            engine = builder.build(args.system, core=args.core)
        except ValueError as exc:
            if args.core == "object":
                raise
            print(f"--core soa: {exc}", file=sys.stderr)
            return 2
    if args.trace_in:
        try:
            requests = load_trace(args.trace_in)
        except FileNotFoundError:
            print(f"trace file not found: {args.trace_in}", file=sys.stderr)
            return 2
        except (ValueError, KeyError) as exc:
            print(f"malformed trace {args.trace_in}: {exc}", file=sys.stderr)
            return 2
    else:
        requests = _make_workload(args, args.system)
    if injector is not None and injector.load_burst_windows():
        from repro.workloads.burst import apply_load_bursts

        requests = apply_load_bursts(requests, injector)
    if args.trace_out:
        save_trace(args.trace_out, requests)
        print(f"trace saved to {args.trace_out} ({len(requests)} requests)")
    engine.submit(requests)
    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        metrics = engine.run()
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(args.profile)
    else:
        metrics = engine.run()
    summary = metrics.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"system={args.system} model={args.model} "
              f"workload={args.workload} load={args.rate}")
        for key, value in summary.items():
            print(f"  {key:>24}: {value:.4f}")
    return 0


def cmd_compare(args) -> int:
    rates = _parse_rates(args.rates)
    if rates is None:
        print(f"malformed --rates {args.rates!r}; expected positive "
              f"comma-separated numbers like '4,8,12'", file=sys.stderr)
        return 2
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in systems if s not in SYSTEM_NAMES]
    if unknown or not systems:
        print(f"unknown system(s) {unknown or args.systems!r}; expected a "
              f"comma-separated subset of {', '.join(SYSTEM_NAMES)}",
              file=sys.stderr)
        return 2
    if args.parallel is not None and args.parallel <= 0:
        print(f"--parallel must be positive, got {args.parallel}",
              file=sys.stderr)
        return 2
    builder = SystemBuilder(model=get_model(args.model),
                            num_adapters=args.adapters,
                            jitter_seed=args.seed)
    runner = SweepRunner(builder, systems=systems)

    def factory(rate, system):
        args_copy = argparse.Namespace(**vars(args))
        args_copy.rate = rate
        return _make_workload(args_copy, system)

    sweep = runner.run("rate_rps", rates, factory, parallel=args.parallel)
    metric = "avg_token_latency_ms"
    series = {s: sweep.series(s, metric) for s in systems}
    print(line_chart(series, title=f"{metric} vs rate",
                     x_label="requests/s", y_label="ms/token"))
    if "v-lora" in systems and len(systems) > 1:
        comparison = SystemComparison(sweep, reference="v-lora",
                                      metric=metric)
        print("\nV-LoRA reduction vs baselines:")
        for baseline, text in comparison.summary().items():
            print(f"  {baseline:<12} {text}")
    return 0


def cmd_fuse(args) -> int:
    items: List[KnowledgeItem] = []
    for chunk in args.items.split(","):
        try:
            family, count, floor = chunk.split(":")
            for i in range(int(count)):
                items.append(KnowledgeItem(
                    f"{family}-{i}", family, float(floor)
                ))
        except ValueError:
            print(f"bad item spec {chunk!r}; expected family:count:floor",
                  file=sys.stderr)
            return 2
    result = KnowledgeFusion(OracleEvaluator()).fuse(items)
    print(f"{len(items)} items -> {result.num_adapters} adapters "
          f"({result.num_rollbacks} rollbacks)")
    for adapter in result.adapters:
        names = ", ".join(i.name for i in adapter.items)
        worst = min(adapter.achieved.values())
        print(f"  {adapter.adapter_id}: [{names}] min accuracy {worst:.3f}")
    if result.violations:
        print(f"  unsatisfiable floors: {result.violations}")
    return 0


def cmd_tiling_search(args) -> int:
    from repro.kernels.search import TilingSearch

    gpu = get_gpu(args.gpu)
    search = TilingSearch(gpu, coarse=False)
    pairs = search.kn_pairs_for_model([args.dim], [args.rank])
    table, report = search.search(pairs, max_m=8192)
    print(f"gpu={gpu.name} configs={report.num_configs} "
          f"shapes={report.num_shapes} profiles={report.num_profiles} "
          f"winners={report.distinct_winners} entries={len(table)}")
    lat = {
        f"m={m}": table.profiled_latency(m, args.dim, args.rank) * 1e6
        for m in search.m_buckets(8192)
    }
    print(bar_chart(lat, title="optimal shrink-GEMM latency per bucket",
                    unit="us"))
    return 0


def _parse_int_list(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x.strip()]


def cmd_kernels(args) -> int:
    import time

    from repro.kernels import store as store_mod
    from repro.kernels.search import TilingSearch
    from repro.kernels.shapes import GemmShape

    store_dir = store_mod.resolve_store_dir(args.store_dir)
    if store_dir is None:
        store_dir = store_mod.default_user_store_dir()
    store = store_mod.KernelTableStore(store_dir)

    if args.kernels_command == "inspect":
        entries = store.entries()
        if args.json:
            print(json.dumps({"store_dir": str(store_dir),
                              "tables": entries}, indent=2, sort_keys=True))
            return 0
        print(f"store: {store_dir} ({len(entries)} table(s))")
        for e in entries:
            meta = e.get("meta", {})
            flag = " [stale]" if e.get("stale") else ""
            print(f"  {e['fingerprint']}  entries={e.get('num_entries', '?')} "
                  f"gpu={meta.get('gpu', '?')} coarse={meta.get('coarse', '?')}"
                  f" {e['size_bytes']}B{flag}")
        return 0

    gpu = get_gpu(args.gpu)
    dims = _parse_int_list(args.dims)
    ranks = _parse_int_list(args.ranks)
    coarse = not args.full
    fingerprint = store_mod.table_fingerprint(gpu, dims, ranks,
                                              args.max_m, coarse)
    source = "store"
    table = None if args.force else store.load(fingerprint)
    searched_s = None
    if table is None:
        source = "search"
        t0 = time.perf_counter()
        search = TilingSearch(gpu, coarse=coarse)
        pairs = search.kn_pairs_for_model(dims, ranks)
        extra = [GemmShape(d, r, d) for d in dims for r in ranks]
        table, _ = search.search(pairs, max_m=args.max_m, extra_shapes=extra)
        searched_s = time.perf_counter() - t0
        store.save(fingerprint, table, meta={
            "gpu": gpu.name, "hidden_dims": sorted(dims),
            "ranks": sorted(ranks), "max_m": args.max_m, "coarse": coarse,
        })
    summary = {
        "gpu": gpu.name,
        "fingerprint": fingerprint,
        "source": source,
        "entries": len(table),
        "path": str(store.path_for(fingerprint)),
    }
    if searched_s is not None:
        summary["search_seconds"] = round(searched_s, 4)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"gpu={gpu.name} fingerprint={fingerprint} source={source} "
              f"entries={len(table)}")
        print(f"table: {summary['path']}")
        if searched_s is not None:
            print(f"searched in {searched_s * 1e3:.1f} ms")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import render_report

    try:
        print(render_report(args.results_dir))
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def cmd_trace(args) -> int:
    if args.trace_command == "generate":
        requests = _make_workload(args, "v-lora")
        save_trace(args.out, requests)
        print(f"wrote {len(requests)} requests to {args.out}")
        return 0
    try:
        stats = trace_stats(load_trace(args.path))
    except FileNotFoundError:
        print(f"trace file not found: {args.path}", file=sys.stderr)
        return 2
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "systems": cmd_systems,
    "models": cmd_models,
    "serve": cmd_serve,
    "compare": cmd_compare,
    "fuse": cmd_fuse,
    "tiling-search": cmd_tiling_search,
    "kernels": cmd_kernels,
    "report": cmd_report,
    "trace": cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
