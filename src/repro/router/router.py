"""Routers mapping free-form queries to (task, adapter) pairs."""

from __future__ import annotations

import abc
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.generation.heads import TASK_PROFILES, TaskProfile
from repro.runtime.request import Request


@dataclass(frozen=True)
class Route:
    """Outcome of routing one query."""

    adapter_id: str
    task_name: str
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in [0,1], got {self.confidence}"
            )


class Router(abc.ABC):
    """Maps a natural-language query to the adapter that should serve it."""

    @abc.abstractmethod
    def route(self, query: str) -> Route:
        """Return the route for ``query``.

        Raises
        ------
        LookupError
            If no registered rule/example matches at all.
        """


def _tokenize(text: str) -> List[str]:
    return re.findall(r"[a-z0-9]+", text.lower())


class KeywordRouter(Router):
    """Rule-based routing: each adapter registers trigger keywords.

    Ties break toward the adapter matching the most keywords, then the
    earliest registered.
    """

    def __init__(self):
        self._rules: List[Tuple[str, str, frozenset]] = []

    def register(self, adapter_id: str, task_name: str,
                 keywords: Sequence[str]) -> None:
        if task_name not in TASK_PROFILES:
            raise KeyError(f"unknown task {task_name!r}")
        if not keywords:
            raise ValueError("need at least one keyword")
        normalized = frozenset(w.lower() for w in keywords)
        self._rules.append((adapter_id, task_name, normalized))

    def route(self, query: str) -> Route:
        tokens = set(_tokenize(query))
        best: Optional[Tuple[int, int, str, str]] = None
        for order, (adapter, task, keywords) in enumerate(self._rules):
            hits = len(tokens & keywords)
            if hits == 0:
                continue
            key = (-hits, order)
            if best is None or key < (best[0], best[1]):
                best = (key[0], key[1], adapter, task)
        if best is None:
            raise LookupError(f"no routing rule matches {query!r}")
        hits = -best[0]
        confidence = min(1.0, hits / 3.0)
        return Route(adapter_id=best[2], task_name=best[3],
                     confidence=confidence)


class EmbeddingRouter(Router):
    """Nearest-neighbour routing over hashed bag-of-ngrams embeddings.

    Each adapter registers a few example queries; an incoming query is
    embedded the same way and routed to the adapter whose examples are
    closest (cosine).  No external models: the embedding is a feature
    hash of word unigrams and bigrams.
    """

    def __init__(self, dim: int = 256, min_similarity: float = 0.18):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.min_similarity = min_similarity
        self._examples: List[Tuple[str, str, np.ndarray]] = []

    def _embed(self, text: str) -> np.ndarray:
        tokens = _tokenize(text)
        grams = tokens + [
            f"{a}_{b}" for a, b in zip(tokens, tokens[1:])
        ]
        vec = np.zeros(self.dim, dtype=np.float64)
        for gram in grams:
            # Stable feature hash (python's hash() is salted per process,
            # which would make routing non-deterministic across runs).
            digest = zlib.crc32(gram.encode("utf-8"))
            slot = digest % self.dim
            sign = 1.0 if (digest >> 16) % 2 == 0 else -1.0
            vec[slot] += sign
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def register(self, adapter_id: str, task_name: str,
                 examples: Sequence[str]) -> None:
        if task_name not in TASK_PROFILES:
            raise KeyError(f"unknown task {task_name!r}")
        if not examples:
            raise ValueError("need at least one example query")
        for example in examples:
            self._examples.append(
                (adapter_id, task_name, self._embed(example))
            )

    def route(self, query: str) -> Route:
        if not self._examples:
            raise LookupError("no examples registered")
        q = self._embed(query)
        best_sim, best_adapter, best_task = -1.0, None, None
        for adapter, task, emb in self._examples:
            sim = float(q @ emb)
            if sim > best_sim:
                best_sim, best_adapter, best_task = sim, adapter, task
        if best_adapter is None or best_sim < self.min_similarity:
            raise LookupError(
                f"no registered example is similar enough to {query!r} "
                f"(best similarity {best_sim:.3f})"
            )
        return Route(adapter_id=best_adapter, task_name=best_task,
                     confidence=max(0.0, min(1.0, best_sim)))


@dataclass
class RoutedFrontend:
    """Turns free-form queries into engine-ready :class:`Request` objects."""

    router: Router
    use_task_heads: bool = True
    default_images: int = 1

    def make_request(self, query: str, arrival_time: float,
                     prefix_key: Optional[str] = None) -> Request:
        """Route a query and materialize the request for it."""
        route = self.router.route(query)
        profile: TaskProfile = TASK_PROFILES[route.task_name]
        use_head = self.use_task_heads and profile.supports_task_head
        return Request(
            adapter_id=route.adapter_id,
            arrival_time=arrival_time,
            input_tokens=profile.input_tokens,
            output_tokens=1 if use_head else profile.output_tokens_lm,
            task_name=profile.name,
            num_images=profile.images_per_request,
            use_task_head=use_head,
            prefix_key=prefix_key,
            prefix_tokens=min(256 * profile.images_per_request,
                              profile.input_tokens)
            if prefix_key else 0,
        )

    def make_requests(self, queries: Sequence[Tuple[str, float]]) -> List[Request]:
        """Route a batch of ``(query, arrival_time)`` pairs."""
        return [self.make_request(q, t) for q, t in queries]
