"""Query-to-adapter routing.

The paper identifies the adapter from the application's registration or
query (§5: "After receiving a request, V-LoRA identifies its LoRA
adapter, dispatches it to the adapter ...") and notes that automatic
adapter identification from free-form queries (task automation, dynamic
LoRA) is orthogonal work.  This package provides that orthogonal piece
as an extension:

* :class:`~repro.router.router.KeywordRouter` — rule-based routing on
  registered keywords;
* :class:`~repro.router.router.EmbeddingRouter` — nearest-neighbour
  routing over hashed bag-of-ngrams embeddings of example queries;
* :class:`~repro.router.router.RoutedFrontend` — wraps an engine:
  free-form queries in, requests out.
"""

from repro.router.router import (
    EmbeddingRouter,
    KeywordRouter,
    Route,
    RoutedFrontend,
    Router,
)

__all__ = [
    "Router",
    "Route",
    "KeywordRouter",
    "EmbeddingRouter",
    "RoutedFrontend",
]
