"""Data augmentation for domain datasets (the paper's "data enhancement").

§3.1: "we only validated the potential gain without fully exploring
advanced training techniques like data enhancement [92, VideoMix] ...
these techniques could further improve accuracy in future work."  This
module provides that future work for the synthetic substrate:

* :func:`mixup` — convex sample mixing (labels follow the dominant
  component, mirroring hard-label training on mixed inputs);
* :func:`videomix` — temporal cut-mix for patch/frame sequences: splice
  the tail frames of one clip onto another;
* :func:`noise_jitter` — additive feature noise;
* :func:`augment_domain` — dataset-level wrapper producing an enlarged
  :class:`~repro.generation.datasets.DomainDataset`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.generation.datasets import DomainDataset


def mixup(
    x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
    alpha: float = 0.3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convex mixing of random sample pairs.

    Returns mixed inputs with the label of the dominant component (this
    substrate trains with hard labels).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    n = x.shape[0]
    lam = rng.beta(alpha, alpha, size=n).astype(np.float32)
    # Keep the first component dominant so its label stays correct.
    lam = np.maximum(lam, 1.0 - lam)
    partner = rng.permutation(n)
    mixed = lam[:, None, None] * x + (1.0 - lam[:, None, None]) * x[partner]
    return mixed.astype(np.float32), y.copy()


def videomix(
    x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
    max_cut_fraction: float = 0.4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Temporal cut-mix: replace each clip's tail frames with another's.

    The cut stays below half the clip so the (dominant) original label
    remains correct — the VideoMix recipe for hard-label pipelines.
    """
    if not 0.0 < max_cut_fraction <= 0.5:
        raise ValueError(
            f"max_cut_fraction must be in (0, 0.5], got {max_cut_fraction}"
        )
    n, patches, _ = x.shape
    out = x.copy()
    partner = rng.permutation(n)
    for i in range(n):
        cut = int(rng.integers(0, max(int(patches * max_cut_fraction), 1) + 1))
        if cut:
            out[i, patches - cut:] = x[partner[i], patches - cut:]
    return out.astype(np.float32), y.copy()


def noise_jitter(
    x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
    scale: float = 0.1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Additive Gaussian feature jitter."""
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    return (x + rng.normal(0.0, scale, x.shape)).astype(np.float32), y.copy()


_STRATEGIES = {
    "mixup": mixup,
    "videomix": videomix,
    "noise": noise_jitter,
}


def augment_domain(
    domain: DomainDataset,
    strategy: str = "mixup",
    copies: int = 1,
    seed: int = 0,
    **kwargs,
) -> DomainDataset:
    """Enlarge a domain's training split with augmented copies.

    The test split is never augmented.  Returns a new dataset named
    ``<name>+<strategy>``.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    fn = _STRATEGIES.get(strategy)
    if fn is None:
        raise KeyError(
            f"unknown strategy {strategy!r}; known: {sorted(_STRATEGIES)}"
        )
    rng = np.random.default_rng(seed)
    xs, ys = [domain.train_x], [domain.train_y]
    for _ in range(copies):
        ax, ay = fn(domain.train_x, domain.train_y, rng, **kwargs)
        xs.append(ax)
        ys.append(ay)
    return DomainDataset(
        name=f"{domain.name}+{strategy}",
        family=domain.family,
        prompt_id=domain.prompt_id,
        train_x=np.concatenate(xs, axis=0),
        train_y=np.concatenate(ys, axis=0),
        test_x=domain.test_x.copy(),
        test_y=domain.test_y.copy(),
    )
