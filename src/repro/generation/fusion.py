"""Accuracy-aware knowledge-fusion algorithm (§4.2.1, Figs. 9-10).

Packing external knowledge (domains distilled from small models or
provided as datasets) into the minimum number of LoRA adapters subject to
per-task accuracy floors is a constrained bin-packing problem; the paper
solves it with a greedy, accuracy-aware heuristic:

1. start a fresh adapter, fuse domains into it one by one (re-training on
   the union each time);
2. if fusing a domain drives *any* packed domain below its requirement,
   roll the adapter's weights back, seal the adapter, and start a new one
   seeded with the offending domain.

The algorithm is generic over an :class:`AccuracyEvaluator`, so the same
code runs against real TinyLMM training (:class:`TrainerEvaluator`) or
the calibrated oracle (:class:`OracleEvaluator`) for serving-scale runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.generation.datasets import DomainDataset
from repro.generation.oracle import FusionAccuracyOracle
from repro.generation.trainer import LoRATrainer


@dataclass(frozen=True)
class KnowledgeItem:
    """One unit of external knowledge to pack: a domain + accuracy floor."""

    name: str
    family_name: str
    required_accuracy: float
    dataset: Optional[DomainDataset] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.required_accuracy <= 1.0:
            raise ValueError(
                f"required_accuracy must be in [0,1], got "
                f"{self.required_accuracy}"
            )


@dataclass
class FusedAdapter:
    """One sealed LoRA adapter with the knowledge packed into it."""

    adapter_id: str
    items: List[KnowledgeItem]
    achieved: Dict[str, float]

    @property
    def num_domains(self) -> int:
        return len(self.items)

    def meets_requirements(self) -> bool:
        return all(
            self.achieved.get(i.name, 0.0) >= i.required_accuracy
            for i in self.items
        )


@dataclass
class FusionResult:
    """Output of one fusion run."""

    adapters: List[FusedAdapter]
    num_rollbacks: int = 0
    num_evaluations: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def num_adapters(self) -> int:
        return len(self.adapters)

    @property
    def mean_domains_per_adapter(self) -> float:
        if not self.adapters:
            return 0.0
        return sum(a.num_domains for a in self.adapters) / len(self.adapters)


class AccuracyEvaluator(abc.ABC):
    """Backend answering "what accuracy would this adapter achieve?"."""

    @abc.abstractmethod
    def begin_adapter(self) -> None:
        """Start a fresh (empty) adapter."""

    @abc.abstractmethod
    def try_fuse(
        self, fused: Sequence[KnowledgeItem], new_item: KnowledgeItem
    ) -> Dict[str, float]:
        """Tentatively fuse ``new_item`` with ``fused``; return per-item
        accuracy of the resulting adapter (including ``new_item``)."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Keep the tentative fuse."""

    @abc.abstractmethod
    def rollback(self) -> None:
        """Discard the tentative fuse, restoring the pre-fuse adapter."""


class TrainerEvaluator(AccuracyEvaluator):
    """Real-training backend over a TinyLMM with an installed adapter."""

    def __init__(self, trainer: LoRATrainer, head_name: Optional[str] = None):
        self.trainer = trainer
        self.head_name = head_name
        self._pre_fuse_snapshot = None

    def begin_adapter(self) -> None:
        self.trainer.model.lora_reset(self.trainer.rng)
        self._pre_fuse_snapshot = None

    def try_fuse(self, fused, new_item) -> Dict[str, float]:
        datasets = [i.dataset for i in (*fused, new_item)]
        if any(d is None for d in datasets):
            raise ValueError("TrainerEvaluator needs datasets on every item")
        self._pre_fuse_snapshot = self.trainer.model.lora_snapshot()
        self.trainer.train(datasets, head_name=self.head_name)
        result = self.trainer.evaluate(datasets, head_name=self.head_name)
        return {
            item.name: result.per_domain[item.dataset.name]
            for item in (*fused, new_item)
        }

    def commit(self) -> None:
        self._pre_fuse_snapshot = None

    def rollback(self) -> None:
        if self._pre_fuse_snapshot is None:
            raise RuntimeError("nothing to roll back")
        self.trainer.model.lora_load(self._pre_fuse_snapshot)
        self._pre_fuse_snapshot = None


class OracleEvaluator(AccuracyEvaluator):
    """Calibrated-oracle backend for serving-scale fusion planning."""

    def __init__(self, oracle: Optional[FusionAccuracyOracle] = None):
        self.oracle = oracle or FusionAccuracyOracle()
        self._committed: List[KnowledgeItem] = []
        self._tentative: Optional[List[KnowledgeItem]] = None

    def begin_adapter(self) -> None:
        self._committed = []
        self._tentative = None

    def try_fuse(self, fused, new_item) -> Dict[str, float]:
        items = [*fused, new_item]
        self._tentative = items
        return {
            item.name: self.oracle.accuracy(item.family_name, len(items),
                                            salt=item.name)
            for item in items
        }

    def commit(self) -> None:
        if self._tentative is None:
            raise RuntimeError("nothing to commit")
        self._committed = self._tentative
        self._tentative = None

    def rollback(self) -> None:
        self._tentative = None


class KnowledgeFusion:
    """The greedy accuracy-aware packer."""

    def __init__(self, evaluator: AccuracyEvaluator,
                 adapter_prefix: str = "lora"):
        self.evaluator = evaluator
        self.adapter_prefix = adapter_prefix

    def fuse(self, items: Sequence[KnowledgeItem]) -> FusionResult:
        """Pack ``items`` (in order) into the minimum adapters the greedy
        heuristic finds.

        A domain that cannot meet its requirement even alone is recorded
        in ``result.violations`` but still gets its own adapter (best
        effort), mirroring the paper's worst case of one adapter per
        dataset.
        """
        if not items:
            raise ValueError("need at least one knowledge item")
        result = FusionResult(adapters=[])
        current: List[KnowledgeItem] = []
        current_accs: Dict[str, float] = {}
        self.evaluator.begin_adapter()

        def seal() -> None:
            if current:
                result.adapters.append(FusedAdapter(
                    adapter_id=f"{self.adapter_prefix}-{len(result.adapters)}",
                    items=list(current),
                    achieved=dict(current_accs),
                ))

        for item in items:
            accs = self.evaluator.try_fuse(current, item)
            result.num_evaluations += 1
            ok = all(
                accs[i.name] >= i.required_accuracy
                for i in (*current, item)
            )
            if ok:
                self.evaluator.commit()
                current.append(item)
                current_accs = accs
                continue
            # Roll back, seal the adapter, start fresh with this item.
            self.evaluator.rollback()
            result.num_rollbacks += 1
            seal()
            current, current_accs = [], {}
            self.evaluator.begin_adapter()
            accs = self.evaluator.try_fuse([], item)
            result.num_evaluations += 1
            self.evaluator.commit()
            current = [item]
            current_accs = accs
            if accs[item.name] < item.required_accuracy:
                result.violations.append(item.name)
        seal()
        return result
