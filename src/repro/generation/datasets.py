"""Synthetic domain-specific vision datasets with controlled interference.

The paper's Fig. 5 shows that how many domains fit in one LoRA adapter
depends on the *task type*: six image-classification models fuse with
>95% accuracy retention, while video-classification fusion degrades
quickly.  The substitution rule (no UCF-101/AID/Aircraft here) is to
build synthetic families that exercise the same mechanism, controlled by
two knobs:

* ``shift_rank`` / ``domain_shift`` — each domain's class prototypes are
  the family's pretraining prototypes pushed through a **low-rank
  perturbation** of the feature space.  A LoRA adapter can invert a
  low-rank shift with a matching amount of rank, and shifts of different
  domains compose additively — so families whose domains differ only by
  such shifts (image classification) pack many domains per adapter.
* ``conflict_fraction`` — a fraction of each domain's labels is
  **permuted** relative to the family prototypes.  Resolving a
  per-domain permutation of *shared* prototypes requires prompt-
  conditional behaviour whose rank demand grows with the number of fused
  domains — the video-classification failure mode.

Every sample is ``(patch features, prompt id, label)`` — the prompt id
plays the role of the task instruction in Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TaskFamily:
    """One vision task type with its interference characteristics.

    Attributes
    ----------
    name:
        Task type name (matches the paper's five tasks where relevant).
    num_classes:
        Labels per domain.
    patches:
        Visual tokens per sample (frames for video tasks).
    shift_rank:
        Rank of each domain's feature-space perturbation.
    domain_shift:
        Magnitude of that perturbation (0 = domain equals pretraining).
    conflict_fraction:
        Fraction in [0, 1] of classes whose labels each domain permutes.
    noise:
        Sample noise scale relative to the prototype signal.
    """

    name: str
    num_classes: int = 8
    patches: int = 8
    feature_dim: int = 32
    shift_rank: int = 1
    domain_shift: float = 1.0
    conflict_fraction: float = 0.0
    noise: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.conflict_fraction <= 1.0:
            raise ValueError("conflict_fraction must be in [0,1]")
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.shift_rank < 0:
            raise ValueError("shift_rank must be >= 0")


IMAGE_CLASSIFICATION = TaskFamily(
    name="image_classification",
    shift_rank=1,
    domain_shift=1.3,
    conflict_fraction=0.0,
    noise=0.30,
)

OBJECT_DETECTION = TaskFamily(
    name="object_detection",
    num_classes=6,
    shift_rank=1,
    domain_shift=0.3,
    conflict_fraction=0.35,
    noise=0.40,
)

VIDEO_CLASSIFICATION = TaskFamily(
    name="video_classification",
    patches=12,
    shift_rank=0,
    domain_shift=0.0,
    conflict_fraction=0.75,
    noise=0.35,
)

TASK_FAMILIES: Dict[str, TaskFamily] = {
    f.name: f for f in (IMAGE_CLASSIFICATION, OBJECT_DETECTION, VIDEO_CLASSIFICATION)
}


@dataclass
class DomainDataset:
    """One domain's train/test split plus its identity."""

    name: str
    family: TaskFamily
    prompt_id: int
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    def __post_init__(self) -> None:
        for x, y in ((self.train_x, self.train_y), (self.test_x, self.test_y)):
            if x.shape[0] != y.shape[0]:
                raise ValueError("features and labels misaligned")
            if x.ndim != 3:
                raise ValueError(f"features must be (N, T, F), got {x.shape}")

    @property
    def num_train(self) -> int:
        return self.train_x.shape[0]

    @property
    def num_test(self) -> int:
        return self.test_x.shape[0]

    def train_prompts(self) -> np.ndarray:
        return np.full(self.num_train, self.prompt_id, dtype=np.int64)

    def test_prompts(self) -> np.ndarray:
        return np.full(self.num_test, self.prompt_id, dtype=np.int64)


def _orthonormal(rng: np.random.Generator, dim: int) -> np.ndarray:
    q, _ = np.linalg.qr(rng.normal(size=(dim, dim)))
    return q.astype(np.float32)


def family_prototypes(family: TaskFamily, seed: int = 0) -> np.ndarray:
    """The family's *pretraining* prototypes (what the base LMM knows)."""
    rng = np.random.default_rng(_family_seed(family) + seed)
    basis = _orthonormal(rng, family.feature_dim)
    return basis[: family.num_classes]


def _family_seed(family: TaskFamily) -> int:
    # hash() is salted per process; use a stable digest instead.
    return sum(ord(c) * 131 ** i for i, c in enumerate(family.name)) % (2**31)


def _domain_prototypes(
    family: TaskFamily, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """(prototypes, label_map) for one domain."""
    base = family_prototypes(family)
    dim = family.feature_dim
    c = family.num_classes
    protos = base.copy()
    # Low-rank feature-space shift: protos @ (I + shift * sum_j a_j b_j^T).
    # The push direction b is drawn from the *span of the prototypes*, so
    # the shift moves classes toward each other (confusing the base model)
    # while remaining a rank-1 correction an adapter can learn.
    for _ in range(family.shift_rank):
        a = rng.normal(size=dim).astype(np.float32)
        a /= np.linalg.norm(a)
        b = (base.T @ rng.normal(size=c)).astype(np.float32)
        b /= np.linalg.norm(b)
        coeff = (protos @ a) * np.sqrt(dim)
        protos = protos + family.domain_shift * np.outer(coeff, b)
    norms = np.linalg.norm(protos, axis=1, keepdims=True)
    protos = (protos / np.maximum(norms, 1e-6)).astype(np.float32)
    # Partial label conflict: permute a fraction of the classes.
    label_map = np.arange(c)
    n_conflict = int(round(family.conflict_fraction * c))
    if n_conflict >= 2:
        chosen = rng.choice(c, size=n_conflict, replace=False)
        label_map[chosen] = np.roll(label_map[chosen], 1)
    return protos, label_map


def _sample(
    protos: np.ndarray,
    label_map: np.ndarray,
    family: TaskFamily,
    n: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    c = protos.shape[0]
    raw = rng.integers(0, c, n)
    x = np.empty((n, family.patches, family.feature_dim), dtype=np.float32)
    drift = np.linspace(1.0, 0.7, family.patches)[:, None]
    for i, cls in enumerate(raw):
        noise = rng.normal(0.0, family.noise,
                           (family.patches, family.feature_dim))
        # Video-style temporal drift: later frames blur toward noise.
        x[i] = protos[cls] * drift + noise
    y = label_map[raw].astype(np.int64)
    return x, y


def make_domain(
    family: TaskFamily,
    domain_index: int,
    n_train: int = 192,
    n_test: int = 128,
    seed: int = 0,
    prompt_id: Optional[int] = None,
) -> DomainDataset:
    """Generate one domain of a task family.

    ``domain_index`` seeds the domain's private shift / permutation, so
    the same index always reproduces the same domain.
    """
    if n_train <= 0 or n_test <= 0:
        raise ValueError("n_train and n_test must be positive")
    rng = np.random.default_rng(
        _family_seed(family) * 1000 + domain_index * 7 + seed
    )
    protos, label_map = _domain_prototypes(family, rng)
    train_x, train_y = _sample(protos, label_map, family, n_train, rng)
    test_x, test_y = _sample(protos, label_map, family, n_test, rng)
    return DomainDataset(
        name=f"{family.name}-d{domain_index}",
        family=family,
        prompt_id=prompt_id if prompt_id is not None else domain_index,
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
    )


def make_domains(
    family: TaskFamily,
    count: int,
    n_train: int = 192,
    n_test: int = 128,
    seed: int = 0,
) -> List[DomainDataset]:
    """Generate ``count`` distinct domains of one family."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return [
        make_domain(family, i, n_train=n_train, n_test=n_test, seed=seed,
                    prompt_id=i)
        for i in range(count)
    ]


#: Shift magnitude of the pretraining domains: the base model sees a
#: *diverse* family of mildly shifted variants (the breadth that makes
#: an LMM transfer zero-shot, Fig. 3), not a single canonical one.
PRETRAIN_DOMAIN_SHIFT = 0.5


def make_pretraining_mixture(
    families=None,
    domains_per_family: int = 4,
    n_per_domain: int = 96,
    seed: int = 1234,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A broad multi-domain mixture for base-model pretraining.

    Labels follow each family's canonical label map (no conflicts), but
    every pretraining domain carries a small private feature shift —
    breadth the base model generalizes from, so it transfers zero-shot
    to unseen mild domains (Fig. 3) while still underperforming on the
    strongly shifted / conflicting target domains until LoRA-tuned
    (Fig. 4).
    """
    from dataclasses import replace

    families = list(families or TASK_FAMILIES.values())
    rng = np.random.default_rng(seed)
    xs, ys, ps = [], [], []
    patches = max(f.patches for f in families)
    dim = families[0].feature_dim
    for fam in families:
        if fam.feature_dim != dim:
            raise ValueError("all families must share feature_dim")
        mild = replace(fam, shift_rank=1,
                       domain_shift=PRETRAIN_DOMAIN_SHIFT,
                       conflict_fraction=0.0)
        for d in range(domains_per_family):
            protos, _ = _domain_prototypes(mild, rng)
            x, y = _sample(protos, np.arange(fam.num_classes), fam,
                           n_per_domain, rng)
            if fam.patches < patches:
                pad = np.repeat(x[:, -1:, :], patches - fam.patches, axis=1)
                x = np.concatenate([x, pad], axis=1)
            xs.append(x)
            ys.append(y)
            ps.append(np.full(n_per_domain, d, dtype=np.int64))
    return (
        np.concatenate(xs, axis=0),
        np.concatenate(ys, axis=0),
        np.concatenate(ps, axis=0),
    )
