"""Calibrated fusion-accuracy oracle.

§4.2.1 notes that a true oracle (accuracy of any knowledge combination
known in advance) does not exist — the greedy algorithm exists precisely
because of that.  For *serving-scale* experiments, though, re-training
hundreds of real adapters adds nothing: what matters downstream is how
many adapters fusion produces.  This oracle replays the Fig. 5 curves —
cross-checked against our own TinyLMM measurements (see
``benchmarks/bench_fig05_fusion_capacity.py``) — so large fusion plans
stay cheap and deterministic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict


def _stable_jitter(salt: str, scale: float) -> float:
    """Deterministic pseudo-noise in [-scale, scale] derived from a salt."""
    digest = hashlib.sha256(salt.encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return (2.0 * unit - 1.0) * scale


@dataclass(frozen=True)
class FusionCurve:
    """Accuracy as a function of the number of fused domains.

    ``accuracy(k) = solo - slope * (k - 1) - curvature * (k - 1)^2``
    clamped to [floor, solo].
    """

    solo: float
    slope: float
    curvature: float = 0.0
    floor: float = 0.10

    def accuracy(self, k: int) -> float:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        drop = self.slope * (k - 1) + self.curvature * (k - 1) ** 2
        return max(self.floor, min(self.solo, self.solo - drop))


#: Per-task-type curves matched to Fig. 5's qualitative trends: image
#: classification retains >95% at six domains; object detection degrades
#: moderately; video classification collapses fast.
DEFAULT_CURVES: Dict[str, FusionCurve] = {
    "image_classification": FusionCurve(solo=0.97, slope=0.004),
    "object_detection": FusionCurve(solo=0.94, slope=0.025, curvature=0.002),
    "video_classification": FusionCurve(solo=0.93, slope=0.055, curvature=0.008),
    # Natural-language tasks fuse like image classification: the LM head
    # already multiplexes them.
    "visual_qa": FusionCurve(solo=0.78, slope=0.006),
    "image_caption": FusionCurve(solo=0.85, slope=0.006),
    "referring_expression": FusionCurve(solo=0.90, slope=0.020),
}


@dataclass
class FusionAccuracyOracle:
    """Deterministic fusion-accuracy lookup with per-item jitter."""

    curves: Dict[str, FusionCurve] = field(
        default_factory=lambda: dict(DEFAULT_CURVES)
    )
    jitter: float = 0.008

    def accuracy(self, family_name: str, num_fused: int,
                 salt: str = "") -> float:
        """Accuracy a domain of ``family_name`` retains inside an adapter
        that fuses ``num_fused`` domains in total."""
        curve = self.curves.get(family_name)
        if curve is None:
            known = ", ".join(sorted(self.curves))
            raise KeyError(
                f"no fusion curve for {family_name!r}; known: {known}"
            )
        base = curve.accuracy(num_fused)
        if self.jitter and salt:
            base += _stable_jitter(f"{family_name}/{num_fused}/{salt}",
                                   self.jitter)
        return float(min(1.0, max(0.0, base)))

    def max_fusable(self, family_name: str, requirement: float,
                    limit: int = 32) -> int:
        """Largest k with ``accuracy(family, k) >= requirement`` (no jitter)."""
        if not 0.0 <= requirement <= 1.0:
            raise ValueError(f"requirement must be in [0,1], got {requirement}")
        curve = self.curves.get(family_name)
        if curve is None:
            raise KeyError(f"no fusion curve for {family_name!r}")
        best = 0
        for k in range(1, limit + 1):
            if curve.accuracy(k) >= requirement:
                best = k
        return best
