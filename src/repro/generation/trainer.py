"""LoRA fine-tuning over one or more domains, plus base-model pretraining.

The fusion algorithm (Fig. 9) trains an adapter on the *union* of the
domains currently packed into it: adding a domain re-trains on the full
set so earlier knowledge is retained to the extent the adapter's rank
allows — the rank limit, not the training schedule, is what Fig. 5
measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.generation.datasets import DomainDataset, make_pretraining_mixture
from repro.nn.optim import Adam
from repro.nn.transformer import TinyLMM, TinyLMMConfig


@dataclass
class EvalResult:
    """Per-domain accuracy after a training run (fractions in [0,1])."""

    per_domain: Dict[str, float]

    @property
    def min_accuracy(self) -> float:
        return min(self.per_domain.values())

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(list(self.per_domain.values())))

    def meets(self, requirements: Dict[str, float]) -> bool:
        """Whether every domain meets its accuracy requirement."""
        return all(
            self.per_domain.get(name, 0.0) >= req
            for name, req in requirements.items()
        )


def pretrain_base(
    config: Optional[TinyLMMConfig] = None,
    steps: int = 200,
    batch_size: int = 64,
    lr: float = 3e-3,
    seed: int = 7,
) -> TinyLMM:
    """Pretrain a TinyLMM on the broad generic mixture.

    This is the stand-in for the public Qwen-VL/LLaVA checkpoint: it
    carries generic multi-domain knowledge, so it transfers zero-shot
    (Fig. 3) but underperforms on shifted domains until LoRA-tuned
    (Fig. 4).
    """
    config = config or TinyLMMConfig()
    rng = np.random.default_rng(seed)
    model = TinyLMM(config, rng=rng)
    x, y, p = make_pretraining_mixture(seed=seed)
    opt = Adam(model.trainable_parameters(), lr=lr)
    n = x.shape[0]
    for _ in range(steps):
        idx = rng.integers(0, n, batch_size)
        loss = model.loss(x[idx], p[idx], y[idx])
        opt.zero_grad()
        loss.backward()
        opt.step()
    return model.eval()


class LoRATrainer:
    """Fine-tune the installed LoRA adapter (and task heads) of a TinyLMM."""

    def __init__(
        self,
        model: TinyLMM,
        lr: float = 5e-3,
        batch_size: int = 48,
        steps_per_domain: int = 60,
        seed: int = 0,
    ):
        if not model.lora_layers:
            raise ValueError("install LoRA first (model.add_lora(rank))")
        if lr <= 0 or batch_size <= 0 or steps_per_domain <= 0:
            raise ValueError("lr, batch_size, steps_per_domain must be positive")
        self.model = model
        self.lr = lr
        self.batch_size = batch_size
        self.steps_per_domain = steps_per_domain
        self.rng = np.random.default_rng(seed)

    def _patches(self) -> int:
        return self.model.config.max_patches

    def _pad(self, x: np.ndarray, patches: int) -> np.ndarray:
        if x.shape[1] == patches:
            return x
        if x.shape[1] > patches:
            return x[:, :patches]
        pad = np.repeat(x[:, -1:, :], patches - x.shape[1], axis=1)
        return np.concatenate([x, pad], axis=1)

    def train(
        self,
        domains: Sequence[DomainDataset],
        head_name: Optional[str] = None,
        steps: Optional[int] = None,
    ) -> None:
        """Train the adapter on the union of ``domains``.

        Each step samples a domain uniformly then a batch within it, so
        domains see balanced gradient traffic regardless of size.
        """
        if not domains:
            raise ValueError("need at least one domain")
        model = self.model.train()
        opt = Adam(model.lora_parameters(), lr=self.lr)
        total_steps = steps or self.steps_per_domain * len(domains)
        patches = min(self._patches(),
                      max(d.family.patches for d in domains))
        for _ in range(total_steps):
            d = domains[self.rng.integers(0, len(domains))]
            idx = self.rng.integers(0, d.num_train,
                                    min(self.batch_size, d.num_train))
            x = self._pad(d.train_x[idx], patches)
            prompts = d.train_prompts()[idx]
            loss = model.loss(x, prompts, d.train_y[idx],
                              head_name=head_name)
            opt.zero_grad()
            loss.backward()
            opt.step()
        model.eval()

    def evaluate(
        self,
        domains: Sequence[DomainDataset],
        head_name: Optional[str] = None,
    ) -> EvalResult:
        """Test-set accuracy per domain."""
        if not domains:
            raise ValueError("need at least one domain")
        patches = min(self._patches(),
                      max(d.family.patches for d in domains))
        accs = {}
        for d in domains:
            x = self._pad(d.test_x, patches)
            accs[d.name] = self.model.accuracy(
                x, d.test_prompts(), d.test_y, head_name=head_name
            )
        return EvalResult(accs)
