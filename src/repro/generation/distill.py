"""Knowledge distillation from existing small models (Fig. 9, left).

The fusion pipeline's first step: when an application brings a trained
small model instead of a dataset, V-LoRA *collects a dataset* by running
representative data through it and recording its outputs.  The LoRA
adapter then learns the small model's knowledge from that distilled
dataset.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.generation.datasets import DomainDataset, TaskFamily
from repro.generation.small_models import SmallModel


def representative_inputs(
    family: TaskFamily,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Unlabeled representative data for distillation.

    Without access to the small model's private training set, V-LoRA
    samples representative inputs from the deployment distribution; we
    draw broad-coverage samples spanning the family's feature space
    (class-prototype directions plus noise, labels unknown).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = rng or np.random.default_rng(0)
    # Broad coverage: random unit directions, not tied to any domain.
    directions = rng.normal(size=(count, family.feature_dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    drift = np.linspace(1.0, 0.7, family.patches)[None, :, None]
    noise = rng.normal(0.0, family.noise,
                       (count, family.patches, family.feature_dim))
    return (directions[:, None, :] * drift + noise).astype(np.float32)


def distill_dataset(
    small_model: SmallModel,
    family: TaskFamily,
    prompt_id: int,
    name: str,
    n_train: int = 192,
    n_test: int = 128,
    inputs: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    seed: int = 0,
) -> DomainDataset:
    """Build a :class:`DomainDataset` labeled by the small model.

    Parameters
    ----------
    small_model:
        The teacher; its hard predictions become the labels.
    family:
        Task family describing the input space.
    prompt_id:
        Prompt/task token the distilled domain will use.
    name:
        Dataset name (becomes the knowledge item's identity).
    inputs:
        Optional (train_x, test_x) representative inputs; generated from
        the deployment distribution when omitted.
    """
    rng = np.random.default_rng(seed)
    if inputs is None:
        train_x = representative_inputs(family, n_train, rng)
        test_x = representative_inputs(family, n_test, rng)
    else:
        train_x, test_x = inputs
        if train_x.ndim != 3 or test_x.ndim != 3:
            raise ValueError("inputs must be (N, patches, feature_dim)")
    train_y = small_model.predict(train_x)
    test_y = small_model.predict(test_x)
    return DomainDataset(
        name=name,
        family=family,
        prompt_id=prompt_id,
        train_x=np.asarray(train_x, dtype=np.float32),
        train_y=train_y.astype(np.int64),
        test_x=np.asarray(test_x, dtype=np.float32),
        test_y=test_y.astype(np.int64),
    )


def distillation_agreement(
    small_model: SmallModel, dataset: DomainDataset
) -> float:
    """Teacher-label agreement of a distilled dataset (sanity metric)."""
    preds = small_model.predict(dataset.test_x)
    return float((preds == dataset.test_y).mean())
