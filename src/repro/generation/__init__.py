"""Accuracy-aware LoRA adapter generation (§4.2) and its substrates.

* :mod:`repro.generation.datasets` — synthetic domain-specific vision
  datasets with task-family-controlled interference (the knob behind
  Fig. 5's task-dependent fusion capacity).
* :mod:`repro.generation.small_models` — domain-specific small models
  (the YOLO/OSCAR/... stand-ins) trained per domain.
* :mod:`repro.generation.trainer` — LoRA fine-tuning loop over one or
  more domains.
* :mod:`repro.generation.fusion` — the accuracy-aware knowledge-fusion
  algorithm (greedy constrained bin packing, Fig. 9/10), usable against
  the real trainer or the calibrated oracle.
* :mod:`repro.generation.oracle` — a calibrated fusion-accuracy oracle
  for serving-scale experiments where training real adapters would be
  wasteful.
* :mod:`repro.generation.heads` — vision-task head profiles: decode
  rounds through the LM head vs. one round through a task head (§4.2.2).
"""

from repro.generation.datasets import (
    IMAGE_CLASSIFICATION,
    OBJECT_DETECTION,
    TASK_FAMILIES,
    VIDEO_CLASSIFICATION,
    DomainDataset,
    TaskFamily,
    make_domain,
    make_domains,
)
from repro.generation.small_models import SmallModel, train_small_model
from repro.generation.trainer import EvalResult, LoRATrainer, pretrain_base
from repro.generation.fusion import (
    AccuracyEvaluator,
    FusedAdapter,
    FusionResult,
    KnowledgeFusion,
    KnowledgeItem,
    OracleEvaluator,
    TrainerEvaluator,
)
from repro.generation.oracle import FusionAccuracyOracle
from repro.generation.heads import TASK_PROFILES, TaskProfile, get_task_profile

__all__ = [
    "TaskFamily",
    "DomainDataset",
    "IMAGE_CLASSIFICATION",
    "OBJECT_DETECTION",
    "VIDEO_CLASSIFICATION",
    "TASK_FAMILIES",
    "make_domain",
    "make_domains",
    "SmallModel",
    "train_small_model",
    "LoRATrainer",
    "EvalResult",
    "pretrain_base",
    "KnowledgeFusion",
    "KnowledgeItem",
    "FusedAdapter",
    "FusionResult",
    "AccuracyEvaluator",
    "TrainerEvaluator",
    "OracleEvaluator",
    "FusionAccuracyOracle",
    "TaskProfile",
    "TASK_PROFILES",
    "get_task_profile",
]
