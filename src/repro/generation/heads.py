"""Vision-task profiles: token shapes and head round counts (§4.2.2, Appx. C).

A task answered through the **LM head** decodes autoregressively — one
round per answer token.  A task answered through its **vision task head**
(a linear layer bundled with the adapter) emits the full answer in a
single round, because most vision-task outputs are a small discrete set
(action classes, vehicle counts, binary target queries).

Token counts follow §6.2: video understanding feeds 6 x 256-token frames
and emits 5-10 tokens through the LM head; VQA feeds ~256 and emits 200+.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class TaskProfile:
    """Serving-relevant shape of one vision task.

    Attributes
    ----------
    name:
        Task name (the five evaluation tasks of §6.1).
    application:
        "visual_retrieval" or "video_analytics".
    input_tokens:
        Prompt + visual tokens per request.
    output_tokens_lm:
        Decode rounds when answering through the LM head.
    num_classes:
        Cardinality of the task head's output (0 = LM-head only task).
    images_per_request:
        Images entering the vision encoder per request.
    """

    name: str
    application: str
    input_tokens: int
    output_tokens_lm: int
    num_classes: int = 0
    images_per_request: int = 1

    def __post_init__(self) -> None:
        if self.application not in ("visual_retrieval", "video_analytics"):
            raise ValueError(
                f"unknown application {self.application!r}"
            )
        if self.input_tokens <= 0 or self.output_tokens_lm <= 0:
            raise ValueError("token counts must be positive")

    @property
    def supports_task_head(self) -> bool:
        return self.num_classes > 0

    def decode_rounds(self, use_task_head: bool) -> int:
        """Decode rounds a request of this task needs."""
        if use_task_head:
            if not self.supports_task_head:
                raise ValueError(
                    f"task {self.name!r} has no task head (LM-head only)"
                )
            return 1
        return self.output_tokens_lm


TASK_PROFILES: Dict[str, TaskProfile] = {
    "visual_qa": TaskProfile(
        name="visual_qa", application="visual_retrieval",
        input_tokens=256 + 32, output_tokens_lm=200,
        num_classes=0,
    ),
    "image_caption": TaskProfile(
        name="image_caption", application="visual_retrieval",
        input_tokens=256 + 16, output_tokens_lm=64,
        num_classes=0,
    ),
    "referring_expression": TaskProfile(
        name="referring_expression", application="visual_retrieval",
        input_tokens=256 + 24, output_tokens_lm=24,
        num_classes=64,          # quantized box grid
    ),
    "object_detection": TaskProfile(
        name="object_detection", application="video_analytics",
        input_tokens=256 + 16, output_tokens_lm=32,
        num_classes=96,          # class x coarse location
    ),
    "video_understanding": TaskProfile(
        name="video_understanding", application="video_analytics",
        input_tokens=6 * 256 + 24, output_tokens_lm=8,
        num_classes=101,         # UCF-101 actions
        images_per_request=6,
    ),
}


def get_task_profile(name: str) -> TaskProfile:
    """Look up a task profile by name."""
    try:
        return TASK_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(TASK_PROFILES))
        raise KeyError(f"unknown task {name!r}; known tasks: {known}") from None


def application_tasks(application: str) -> Tuple[TaskProfile, ...]:
    """All task profiles belonging to one application."""
    tasks = tuple(
        p for p in TASK_PROFILES.values() if p.application == application
    )
    if not tasks:
        raise ValueError(f"unknown application {application!r}")
    return tasks
