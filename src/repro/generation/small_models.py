"""Domain-specific small models (the YOLO / OSCAR / ... stand-ins).

A small model here is a two-layer MLP over mean-pooled patch features,
trained on exactly one domain — the "existing small models trained on
domain-specific datasets" of §2.  They are strong on their home domain
and brittle off it, which is what Fig. 3's zero-shot comparison and the
knowledge-fusion pipeline (Fig. 9: run representative data through the
small model to collect a dataset) rely on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.generation.datasets import DomainDataset
from repro.nn.layers import Linear, Module, cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad


class SmallModel(Module):
    """Two-layer MLP classifier over mean-pooled patch features."""

    def __init__(self, feature_dim: int, num_classes: int, hidden: int = 64,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(feature_dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, features: np.ndarray) -> Tensor:
        pooled = np.asarray(features, dtype=np.float32).mean(axis=1)
        return self.fc2(self.fc1(Tensor(pooled)).relu())

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        with no_grad():
            logits = self.forward(features)
        return float((logits.data.argmax(axis=1) == np.asarray(labels)).mean())

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard labels — used to *distill* the small model's knowledge
        into a dataset for LoRA training (Fig. 9)."""
        with no_grad():
            logits = self.forward(features)
        return logits.data.argmax(axis=1)


def train_small_model(
    dataset: DomainDataset,
    steps: int = 150,
    batch_size: int = 64,
    lr: float = 3e-3,
    seed: int = 0,
) -> SmallModel:
    """Train a small model on one domain; returns the trained model."""
    if steps <= 0 or batch_size <= 0:
        raise ValueError("steps and batch_size must be positive")
    rng = np.random.default_rng(seed)
    model = SmallModel(
        dataset.family.feature_dim, dataset.family.num_classes, rng=rng
    )
    opt = Adam(model.trainable_parameters(), lr=lr)
    n = dataset.num_train
    for _ in range(steps):
        idx = rng.integers(0, n, min(batch_size, n))
        loss = cross_entropy(
            model.forward(dataset.train_x[idx]), dataset.train_y[idx]
        )
        opt.zero_grad()
        loss.backward()
        opt.step()
    return model
