"""Tests for query-to-adapter routing."""

import pytest

from repro.router import EmbeddingRouter, KeywordRouter, Route, RoutedFrontend


class TestRoute:
    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            Route("a", "visual_qa", 1.5)


class TestKeywordRouter:
    @pytest.fixture()
    def router(self):
        r = KeywordRouter()
        r.register("det-lora", "object_detection",
                   ["detect", "find", "locate", "car", "person"])
        r.register("vqa-lora", "visual_qa",
                   ["what", "why", "how", "question"])
        r.register("video-lora", "video_understanding",
                   ["action", "activity", "video"])
        return r

    def test_routes_by_keywords(self, router):
        route = router.route("Find the person at the corner")
        assert route.adapter_id == "det-lora"
        assert route.task_name == "object_detection"

    def test_most_hits_wins(self, router):
        # "what ... video action" -> 1 vqa hit vs 2 video hits.
        route = router.route("what action happens in this video")
        assert route.adapter_id == "video-lora"

    def test_case_insensitive(self, router):
        assert router.route("DETECT CARS").adapter_id == "det-lora"

    def test_no_match_raises(self, router):
        with pytest.raises(LookupError):
            router.route("bonjour le monde")

    def test_registration_validation(self):
        r = KeywordRouter()
        with pytest.raises(KeyError):
            r.register("a", "not-a-task", ["x"])
        with pytest.raises(ValueError):
            r.register("a", "visual_qa", [])

    def test_confidence_grows_with_hits(self, router):
        one = router.route("detect").confidence
        three = router.route("detect and locate the car").confidence
        assert three > one


class TestEmbeddingRouter:
    @pytest.fixture()
    def router(self):
        r = EmbeddingRouter(min_similarity=0.18)
        r.register("det-lora", "object_detection", [
            "find the red car in the frame",
            "locate every person on the sidewalk",
        ])
        r.register("vqa-lora", "visual_qa", [
            "what color is the traffic light",
            "how many people are waiting at the corner",
        ])
        return r

    def test_nearest_example_wins(self, router):
        route = router.route("locate the blue car near the sidewalk")
        assert route.adapter_id == "det-lora"
        route = router.route("what color is the car")
        assert route.adapter_id == "vqa-lora"

    def test_dissimilar_query_raises(self, router):
        with pytest.raises(LookupError):
            router.route("zzz qqq xxx")

    def test_empty_router_raises(self):
        with pytest.raises(LookupError):
            EmbeddingRouter().route("anything")

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingRouter(dim=0)
        r = EmbeddingRouter()
        with pytest.raises(ValueError):
            r.register("a", "visual_qa", [])
        with pytest.raises(KeyError):
            r.register("a", "poetry", ["x"])


class TestRoutedFrontend:
    @pytest.fixture()
    def frontend(self):
        r = KeywordRouter()
        r.register("det-lora", "object_detection", ["detect", "find"])
        r.register("vqa-lora", "visual_qa", ["what", "how"])
        return RoutedFrontend(router=r, use_task_heads=True)

    def test_detection_uses_task_head(self, frontend):
        req = frontend.make_request("detect the bus", arrival_time=1.0)
        assert req.adapter_id == "det-lora"
        assert req.use_task_head
        assert req.output_tokens == 1
        assert req.arrival_time == 1.0

    def test_vqa_uses_lm_head(self, frontend):
        req = frontend.make_request("what is happening", arrival_time=0.0)
        assert not req.use_task_head
        assert req.output_tokens > 1

    def test_prefix_key_propagates(self, frontend):
        req = frontend.make_request("find the dog", arrival_time=0.0,
                                    prefix_key="img-9")
        assert req.prefix_key == "img-9"
        assert req.prefix_tokens > 0

    def test_batch_routing(self, frontend):
        reqs = frontend.make_requests([
            ("find the dog", 0.0), ("what is this", 0.5),
        ])
        assert [r.adapter_id for r in reqs] == ["det-lora", "vqa-lora"]

    def test_frontend_requests_servable(self, frontend):
        """Routed requests run through a real engine."""
        from repro.core import SystemBuilder
        from repro.models import QWEN_VL_7B, LoRAAdapterSpec
        specs = [
            LoRAAdapterSpec("det-lora", QWEN_VL_7B, task_head_classes=96),
            LoRAAdapterSpec("vqa-lora", QWEN_VL_7B),
        ]
        engine = SystemBuilder(adapter_specs=specs).build("v-lora")
        reqs = frontend.make_requests([
            ("find the dog", 0.0),
            ("what is the dog doing", 0.2),
        ])
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_completed == 2
