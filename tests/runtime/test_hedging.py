"""Tail-tolerant dispatch: hedging, retry budgets, timeout policy.

Unit coverage for :mod:`repro.runtime.hedging` (the shared backoff
curve, the token-bucket retry budget, percentile-tracked hedge
thresholds) plus end-to-end cluster tests: hedges fire under a
straggler, first completion wins, losers are fenced exactly once, and
every knob left at its default changes nothing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import SystemBuilder
from repro.runtime import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    HedgeConfig,
    HedgeTracker,
    MultiGPUServer,
    Request,
    RequestStatus,
    RetryBudget,
    RetryBudgetConfig,
    StreamingQuantile,
    TimeoutPolicy,
    capped_exponential_backoff,
    percentile,
    reset_request_ids,
)
from repro.runtime.overload import BrownoutConfig, BrownoutController

ADAPTER_IDS = [f"lora-{i}" for i in range(3)]


# -- capped_exponential_backoff (the shared curve) ----------------------------


@given(base=st.floats(0.0, 10.0), cap=st.floats(0.0, 100.0),
       attempt=st.integers(0, 60))
def test_backoff_never_exceeds_cap(base, cap, attempt):
    delay = capped_exponential_backoff(base, attempt, cap)
    assert 0.0 <= delay <= max(cap, 0.0) or delay <= base


@given(base=st.floats(1e-6, 10.0), cap=st.floats(1e-6, 100.0),
       attempt=st.integers(1, 59))
def test_backoff_monotone_in_attempt(base, cap, attempt):
    a = capped_exponential_backoff(base, attempt, cap)
    b = capped_exponential_backoff(base, attempt + 1, cap)
    assert b >= a


@given(base=st.floats(1e-3, 5.0), cap=st.floats(1e-3, 50.0),
       attempt=st.integers(0, 40))
def test_backoff_matches_legacy_formula(base, cap, attempt):
    """Byte-identical to the inline math the call sites used to carry."""
    legacy = min(base * 2 ** max(0, attempt - 1), cap)
    assert capped_exponential_backoff(base, attempt, cap) == legacy


def test_backoff_zero_base_is_free():
    assert capped_exponential_backoff(0.0, 7, 10.0) == 0.0


def test_backoff_rejects_negative():
    with pytest.raises(ValueError):
        capped_exponential_backoff(-1.0, 1, 5.0)
    with pytest.raises(ValueError):
        capped_exponential_backoff(1.0, 1, -5.0)


# -- TimeoutPolicy ------------------------------------------------------------


def test_timeout_policy_defaults_are_inert():
    policy = TimeoutPolicy()
    # Every field None: legacy knobs pass straight through.
    assert policy.requeue_backoff(3, 0.5, 4.0) == \
        capped_exponential_backoff(0.5, 3, 4.0)
    assert policy.swap_backoff(2, 0.25, 2.0) == \
        capped_exponential_backoff(0.25, 2, 2.0)


def test_timeout_policy_fields_override_legacy_knobs():
    policy = TimeoutPolicy(requeue_backoff_s=1.0, requeue_backoff_cap_s=2.0,
                           swap_retry_base_s=0.1, swap_retry_cap_s=0.2)
    assert policy.requeue_backoff(5, 99.0, 99.0) == 2.0
    assert policy.swap_backoff(5, 99.0, 99.0) == 0.2


def test_timeout_policy_backoff_clamped_to_deadline():
    policy = TimeoutPolicy(requeue_backoff_s=1.0, requeue_backoff_cap_s=30.0)
    assert policy.requeue_backoff(10, 0.0, 0.0, deadline_s=2.5) == 2.5


@pytest.mark.parametrize("kwargs", [
    {"hedge_after_s": 0.0},
    {"give_up_after_s": -1.0},
    {"drain_timeout_s": 0.0},
    {"requeue_backoff_s": -0.1},
    {"breaker_cooldown_s": -2.0},
])
def test_timeout_policy_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        TimeoutPolicy(**kwargs)


# -- RetryBudget --------------------------------------------------------------


def test_retry_budget_config_validation():
    with pytest.raises(ValueError):
        RetryBudgetConfig(ratio=0.0)
    with pytest.raises(ValueError):
        RetryBudgetConfig(ratio=1.5)
    with pytest.raises(ValueError):
        RetryBudgetConfig(burst=0.0)
    with pytest.raises(ValueError):
        RetryBudgetConfig(initial=50.0, burst=20.0)


def test_retry_budget_spend_and_deposit():
    budget = RetryBudget(RetryBudgetConfig(ratio=0.5, burst=3.0, initial=1.0))
    assert budget.tokens(0) == 1.0
    assert budget.try_spend(0)          # 1.0 -> 0.0
    assert not budget.try_spend(0)      # broke
    assert budget.exhausted == 1
    budget.deposit(0)
    budget.deposit(0)                   # 0.0 -> 1.0
    assert budget.try_spend(0)
    assert budget.spent == 2


def test_retry_budget_burst_cap_and_class_isolation():
    budget = RetryBudget(RetryBudgetConfig(ratio=1.0, burst=2.0, initial=2.0))
    for _ in range(10):
        budget.deposit(1)
    assert budget.tokens(1) == 2.0      # saturates at burst
    while budget.try_spend(1):
        pass
    # Class 1 is broke; class 2's bucket is untouched.
    assert budget.tokens(1) < 1.0
    assert budget.try_spend(2)


def test_retry_budget_ten_percent_rule():
    """100 fresh dispatches at ratio 0.1 fund ~10 retries past seed."""
    budget = RetryBudget(RetryBudgetConfig(ratio=0.1, burst=100.0,
                                           initial=0.0))
    for _ in range(100):
        budget.deposit(0)
    granted = 0
    while budget.try_spend(0):
        granted += 1
    # 100 deposits of 0.1 accumulate to 10 minus float dust.
    assert granted in (9, 10)


# -- percentile helpers -------------------------------------------------------


def test_percentile_matches_numpy():
    values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
    for q in (0.0, 50.0, 95.0, 100.0):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)))


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


def test_streaming_quantile_window_eviction():
    q = StreamingQuantile(window=4)
    assert q.quantile(50.0) is None
    for v in (1.0, 2.0, 3.0, 4.0):
        q.observe(v)
    assert len(q) == 4
    assert q.quantile(100.0) == 4.0
    # Pushing large values evicts the old small ones.
    for v in (10.0, 11.0, 12.0, 13.0):
        q.observe(v)
    assert q.quantile(0.0) == 10.0


def test_streaming_quantile_rejects_bad_window():
    with pytest.raises(ValueError):
        StreamingQuantile(window=0)


# -- HedgeTracker -------------------------------------------------------------


def test_hedge_config_validation():
    with pytest.raises(ValueError):
        HedgeConfig(percentile=100.0)
    with pytest.raises(ValueError):
        HedgeConfig(min_observations=0)
    with pytest.raises(ValueError):
        HedgeConfig(window=4, min_observations=8)
    with pytest.raises(ValueError):
        HedgeConfig(interval_s=0.0)


def test_hedge_tracker_disarmed_until_min_observations():
    tracker = HedgeTracker(HedgeConfig(min_observations=4, window=8))
    for i in range(3):
        tracker.observe(0, 1.0 + i)
        assert tracker.threshold(0) is None
    tracker.observe(0, 4.0)
    assert tracker.threshold(0) is not None
    # Other priority classes remain disarmed: per-class windows.
    assert tracker.threshold(1) is None


def test_hedge_tracker_fixed_threshold_overrides_percentile():
    tracker = HedgeTracker(HedgeConfig(min_observations=4),
                           TimeoutPolicy(hedge_after_s=0.75))
    assert tracker.threshold(0) == 0.75  # armed with zero observations


# -- cluster integration ------------------------------------------------------


def _straggler_cluster(num_gpus=3, *, hedge=None, retry_budget=None,
                       timeout_policy=None, magnitude=8.0, **kwargs):
    injector = FaultInjector([
        FaultSpec(FaultKind.ENGINE_SLOW, start=0.0, duration=60.0,
                  magnitude=magnitude, target="gpu-0"),
    ])
    builder = SystemBuilder(num_adapters=len(ADAPTER_IDS), max_batch_size=8,
                            fault_injector=injector)
    return MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), num_gpus, hedge=hedge,
        retry_budget=retry_budget, timeout_policy=timeout_policy, **kwargs,
    )


def _trace(n=48, spacing=0.01):
    return [Request(adapter_id=ADAPTER_IDS[i % len(ADAPTER_IDS)],
                    arrival_time=i * spacing, input_tokens=64,
                    output_tokens=8) for i in range(n)]


def _assert_exactly_once(requests, metrics):
    finished = [r for r in requests if r.status is RequestStatus.FINISHED]
    aborted = [r for r in requests if r.status is RequestStatus.ABORTED]
    assert len(finished) + len(aborted) == len(requests)
    assert metrics.num_completed == len(finished)
    assert metrics.num_aborted == len(aborted)
    rec_ids = [rec.request_id for rec in metrics.records]
    abort_ids = [ab.request_id for ab in metrics.aborts]
    assert len(set(rec_ids)) == len(rec_ids), "double-completed request"
    assert not set(rec_ids) & set(abort_ids), "completed AND aborted"


def test_hedging_fires_and_fences_under_straggler():
    reset_request_ids()
    server = _straggler_cluster(
        hedge=HedgeConfig(min_observations=8, window=64))
    requests = _trace()
    server.submit(requests)
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    assert metrics.hedges_fired > 0, "straggler never triggered a hedge"
    assert metrics.hedge_wins > 0, "no hedge ever beat the straggler"
    # Every race has exactly one loser, and it is fenced — never a
    # duplicate terminal.
    assert metrics.hedge_losses == metrics.hedges_fired
    assert metrics.hedge_wins <= metrics.hedges_fired


def test_hedging_never_burns_failover_budget():
    """A hedge is speculative, not a failure: the primary's ``requeues``
    and ``drain_hops`` budgets must stay untouched."""
    reset_request_ids()
    server = _straggler_cluster(
        hedge=HedgeConfig(min_observations=8, window=64), max_requeues=1)
    requests = _trace()
    server.submit(requests)
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    assert metrics.hedges_fired > 0
    assert metrics.requeue_limit_aborts == 0
    for r in requests:
        assert r.requeues == 0
        assert r.drain_hops == 0
        assert not r.is_hedge


def test_fixed_hedge_threshold_via_timeout_policy():
    reset_request_ids()
    server = _straggler_cluster(
        hedge=HedgeConfig(),  # min_observations=16 never reached alone
        timeout_policy=TimeoutPolicy(hedge_after_s=0.4))
    requests = _trace(n=24)
    server.submit(requests)
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    assert metrics.hedges_fired > 0


def test_retry_budget_caps_hedges():
    """A one-token budget allows at most one hedge and counts denials."""
    reset_request_ids()
    budget = RetryBudget(RetryBudgetConfig(ratio=0.01, burst=1.0,
                                           initial=1.0))
    server = _straggler_cluster(
        hedge=HedgeConfig(min_observations=8, window=64),
        retry_budget=budget)
    requests = _trace()
    server.submit(requests)
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    assert metrics.hedges_fired <= 2  # seed token + trace deposits
    assert metrics.retry_budget_exhausted > 0
    assert budget.exhausted > 0


def test_brownout_disables_hedging():
    reset_request_ids()
    server = _straggler_cluster(
        hedge=HedgeConfig(min_observations=8, window=64))
    # Force every replica into a brownout tier: the hedge pass must
    # refuse to add speculative load to a degraded fleet.  A +inf
    # transition timestamp freezes the controller at L1 (observe()
    # only transitions after the dwell period elapses), and the huge
    # queue_high keeps L1 from shedding anything.
    for rep in server.replicas:
        ctl = BrownoutController(BrownoutConfig(queue_high=10_000))
        ctl.level = 1
        ctl._last_transition = float("inf")
        rep.engine._brownout = ctl
    requests = _trace()
    server.submit(requests)
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    assert metrics.hedges_fired == 0


def test_brownout_hedging_allowed_property():
    ctl = BrownoutController(BrownoutConfig())
    assert ctl.hedging_allowed
    ctl.level = 1
    assert not ctl.hedging_allowed


def test_give_up_after_stamps_deadlines():
    """``give_up_after_s`` bounds time-in-system through the engine's
    existing deadline machinery."""
    reset_request_ids()
    server = _straggler_cluster(
        num_gpus=2, magnitude=40.0,
        timeout_policy=TimeoutPolicy(give_up_after_s=0.75))
    requests = _trace(n=24)
    server.submit(requests)
    for r in requests:
        assert r.deadline_s == 0.75
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    # Without hedging to rescue them, the 40x straggler's requests hit
    # the unified give-up deadline.
    assert metrics.num_aborted > 0
    assert all(ab.reason == "deadline_exceeded" for ab in metrics.aborts)


def test_hedging_rescues_give_up_deadline():
    """With hedging on, copies escape the straggler and the give-up
    deadline is met instead of tripped."""
    reset_request_ids()
    server = _straggler_cluster(
        num_gpus=2, magnitude=40.0,
        hedge=HedgeConfig(min_observations=8, window=64),
        timeout_policy=TimeoutPolicy(give_up_after_s=0.75))
    requests = _trace(n=24)
    server.submit(requests)
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    assert metrics.hedges_fired > 0
    assert metrics.num_aborted < len(requests) // 2


def test_hedging_defaults_off_no_behavior_change():
    """Without a HedgeConfig the cluster never constructs hedge state."""
    reset_request_ids()
    server = _straggler_cluster(hedge=None)
    assert server._hedge_tracker is None
    assert not server._fenced
    requests = _trace(n=16)
    server.submit(requests)
    metrics = server.run()
    _assert_exactly_once(requests, metrics)
    assert metrics.hedges_fired == 0
    assert metrics.hedge_losses == 0


def test_summary_hides_hedge_counters_when_zero():
    reset_request_ids()
    builder = SystemBuilder(num_adapters=len(ADAPTER_IDS))
    engine = builder.build("v-lora")
    engine.submit(_trace(n=4))
    summary = engine.run().summary()
    for key in ("hedges_fired", "hedge_wins", "hedge_losses",
                "retry_budget_exhausted"):
        assert key not in summary


def test_soa_core_rejects_timeout_policy():
    builder = SystemBuilder(num_adapters=len(ADAPTER_IDS),
                            timeout_policy=TimeoutPolicy(hedge_after_s=1.0))
    with pytest.raises(ValueError, match="tail-tolerant"):
        builder.build("v-lora", core="soa")
