"""Tests for Request lifecycle and the simulated clock."""

import pytest

from repro.runtime import Request, SimClock
from repro.runtime.request import RequestStatus


class TestSimClock:
    def test_advances_monotonically(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_to_never_rewinds(self):
        clock = SimClock(start=5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0


class TestRequest:
    def make(self, **kwargs):
        defaults = dict(adapter_id="a", arrival_time=1.0,
                        input_tokens=100, output_tokens=10)
        defaults.update(kwargs)
        return Request(**defaults)

    def test_ids_unique(self):
        assert self.make().request_id != self.make().request_id

    def test_token_accounting(self):
        r = self.make()
        assert r.total_tokens == 110
        assert r.context_len == 100
        r.generated = 4
        assert r.context_len == 104
        assert r.remaining == 6
        assert not r.is_finished
        r.generated = 10
        assert r.is_finished

    def test_latency_requires_finish(self):
        r = self.make()
        with pytest.raises(RuntimeError):
            r.latency()
        r.finish_time = 3.5
        assert r.latency() == pytest.approx(2.5)

    def test_waiting_time_clamped(self):
        r = self.make()
        assert r.waiting_time(0.5) == 0.0
        assert r.waiting_time(4.0) == pytest.approx(3.0)

    def test_task_head_requires_single_round(self):
        with pytest.raises(ValueError):
            self.make(use_task_head=True, output_tokens=5)
        r = self.make(use_task_head=True, output_tokens=1)
        assert r.output_tokens == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(input_tokens=0)
        with pytest.raises(ValueError):
            self.make(output_tokens=0)
        with pytest.raises(ValueError):
            self.make(arrival_time=-1.0)
        with pytest.raises(ValueError):
            self.make(prefix_tokens=101)

    def test_initial_status(self):
        assert self.make().status is RequestStatus.WAITING
