"""Tests for metrics accounting, including SLO attainment."""

import pytest

from repro.runtime import MetricsCollector, Request, RequestRecord


def finished_request(arrival=0.0, first=0.5, finish=1.0, slo=None,
                     adapter="a", task="visual_qa",
                     input_tokens=100, output_tokens=10):
    req = Request(adapter_id=adapter, arrival_time=arrival,
                  input_tokens=input_tokens, output_tokens=output_tokens,
                  task_name=task, slo_s=slo)
    req.first_token_time = first
    req.finish_time = finish
    req.generated = output_tokens
    return req


class TestRequestRecord:
    def test_derives_latency_and_ttft(self):
        rec = RequestRecord.from_request(finished_request())
        assert rec.latency == pytest.approx(1.0)
        assert rec.ttft == pytest.approx(0.5)
        assert rec.total_tokens == 110

    def test_unfinished_rejected(self):
        req = Request(adapter_id="a", arrival_time=0.0,
                      input_tokens=1, output_tokens=1)
        with pytest.raises(ValueError):
            RequestRecord.from_request(req)


class TestCollector:
    @pytest.fixture()
    def metrics(self):
        m = MetricsCollector()
        m.complete(finished_request(arrival=0.0, finish=1.0))
        m.complete(finished_request(arrival=1.0, finish=4.0, adapter="b",
                                    task="image_caption"))
        return m

    def test_avg_token_latency_definition(self, metrics):
        """Sum of latencies over total tokens (§6.1)."""
        expected = (1.0 + 3.0) / (110 + 110)
        assert metrics.avg_token_latency() == pytest.approx(expected)

    def test_throughput_spans_arrival_to_finish(self, metrics):
        assert metrics.throughput_rps() == pytest.approx(2 / 4.0)
        assert metrics.throughput_rps(duration=10.0) == pytest.approx(0.2)

    def test_percentiles_ordered(self, metrics):
        assert metrics.latency_percentile(50) <= metrics.latency_percentile(99)

    def test_breakdowns(self, metrics):
        assert set(metrics.by_adapter()) == {"a", "b"}
        assert set(metrics.by_task()) == {"visual_qa", "image_caption"}

    def test_empty_collector_raises(self):
        with pytest.raises(ValueError):
            MetricsCollector().avg_token_latency()
        with pytest.raises(ValueError):
            MetricsCollector().throughput_rps()

    def test_summary_keys(self, metrics):
        summary = metrics.summary()
        for key in ("completed", "avg_token_latency_ms", "throughput_rps",
                    "p99_latency_s", "mode_switches", "preemptions"):
            assert key in summary

    def test_mode_counting(self):
        m = MetricsCollector()
        m.count_mode("merged")
        m.count_mode("merged")
        m.count_mode("mixture")
        assert m.mode_iterations == {"merged": 2, "mixture": 1}


class TestSLOAttainment:
    def test_none_without_slos(self):
        m = MetricsCollector()
        m.complete(finished_request())
        assert m.slo_attainment() is None
        assert "slo_attainment" not in m.summary()

    def test_attainment_fraction(self):
        m = MetricsCollector()
        m.complete(finished_request(finish=1.0, slo=2.0))   # met
        m.complete(finished_request(finish=1.0, slo=0.5))   # missed
        m.complete(finished_request(finish=1.0))            # no SLO
        assert m.slo_attainment() == pytest.approx(0.5)
        assert m.summary()["slo_attainment"] == pytest.approx(0.5)

    def test_request_met_slo_helper(self):
        met = finished_request(finish=1.0, slo=2.0)
        missed = finished_request(finish=1.0, slo=0.5)
        plain = finished_request(finish=1.0)
        assert met.met_slo() is True
        assert missed.met_slo() is False
        assert plain.met_slo() is None

    def test_slo_validation(self):
        with pytest.raises(ValueError):
            Request(adapter_id="a", arrival_time=0.0, input_tokens=1,
                    output_tokens=1, slo_s=0.0)

    def test_engine_reports_attainment(self):
        from repro.core import SystemBuilder
        builder = SystemBuilder(num_adapters=2)
        engine = builder.build("v-lora")
        reqs = [
            Request(adapter_id="lora-0", arrival_time=0.01 * i,
                    input_tokens=64, output_tokens=2, slo_s=30.0)
            for i in range(5)
        ]
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.slo_attainment() == 1.0
