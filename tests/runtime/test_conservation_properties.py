"""Request-conservation properties under randomized traces and faults.

The cluster's master invariant: **every submitted request reaches exactly
one terminal state** (FINISHED or ABORTED) — never lost, never double
counted — regardless of dispatch policy, injected faults, or replica
lifecycle churn (spawn / drain / fail mid-drain).

Hypothesis drives randomized traces through every dispatch policy ×
fault menu combination (200+ cases per full run); deterministic tests
pin down the lifecycle corners randomness can't reliably reach
(mid-drain failover, drain-requeue accounting vs. the failover budget).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import SystemBuilder
from repro.runtime import (
    AutoscaleConfig,
    Autoscaler,
    FailureDetector,
    FailureDetectorConfig,
    FaultInjector,
    FaultKind,
    FaultSpec,
    MultiGPUServer,
    Request,
    RequestStatus,
    reset_request_ids,
)

pytestmark = pytest.mark.property

ADAPTER_IDS = [f"lora-{i}" for i in range(3)]
DISPATCH_POLICIES = ("least-loaded", "round-robin", "adapter-affinity")

#: Named fault schedules the randomized traces run under.  ``chaos`` is
#: degraded-but-alive; ``one-dead`` forces failover; ``all-dead`` forces
#: the abort path (conservation must hold even when nothing can run).
FAULT_MENUS = {
    "none": (),
    "chaos": (
        FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, start=0.0, duration=2.0,
                  target=ADAPTER_IDS[0]),
        FaultSpec(FaultKind.ENGINE_SLOW, start=0.5, duration=2.0,
                  magnitude=3.0, target="gpu-0"),
        FaultSpec(FaultKind.KV_PRESSURE, start=1.0, duration=1.5,
                  magnitude=0.4),
    ),
    "one-dead": (
        FaultSpec(FaultKind.ENGINE_FAIL, start=0.75, target="gpu-1"),
    ),
    "all-dead": (
        FaultSpec(FaultKind.ENGINE_FAIL, start=0.5, target="gpu-0"),
        FaultSpec(FaultKind.ENGINE_FAIL, start=0.9, target="gpu-1"),
    ),
}

_BUILDER = SystemBuilder(num_adapters=len(ADAPTER_IDS), max_batch_size=8,
                         deadline_slo_factor=4.0)


@st.composite
def traces(draw):
    """A bounded random request trace (1..14 requests over ~3s)."""
    n = draw(st.integers(1, 14))
    reqs = []
    for _ in range(n):
        reqs.append(Request(
            adapter_id=draw(st.sampled_from(ADAPTER_IDS)),
            arrival_time=draw(st.floats(0.0, 3.0)),
            input_tokens=draw(st.integers(1, 256)),
            output_tokens=draw(st.integers(1, 16)),
            use_task_head=False,
            slo_s=draw(st.sampled_from([None, 2.0, 8.0])),
        ))
    return reqs


def assert_exactly_once_terminal(requests, metrics):
    """Every request terminal exactly once; metrics agree with statuses."""
    finished = [r for r in requests if r.status is RequestStatus.FINISHED]
    aborted = [r for r in requests if r.status is RequestStatus.ABORTED]
    # Terminal, and no request in both camps (statuses are exclusive).
    assert len(finished) + len(aborted) == len(requests)
    # Metrics saw each terminal exactly once.
    assert metrics.num_completed == len(finished)
    assert metrics.num_aborted == len(aborted)
    rec_ids = [rec.request_id for rec in metrics.records]
    abort_ids = [ab.request_id for ab in metrics.aborts]
    assert len(set(rec_ids)) == len(rec_ids), "double-completed request"
    assert len(set(abort_ids)) == len(abort_ids), "double-aborted request"
    assert not set(rec_ids) & set(abort_ids), "completed AND aborted"
    assert set(rec_ids) | set(abort_ids) == {r.request_id for r in requests}
    # Latency sanity on the completions.
    for rec in metrics.records:
        assert rec.finish_time >= rec.arrival_time
        assert math.isfinite(rec.latency) and rec.latency >= 0.0


def _fresh_cluster(dispatch, faults, num_gpus=2, **kwargs):
    injector = FaultInjector(list(faults)) if faults else None
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        deadline_slo_factor=4.0, fault_injector=injector,
    )
    return MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), num_gpus, dispatch=dispatch,
        **kwargs,
    )


@pytest.mark.parametrize("dispatch", DISPATCH_POLICIES)
@pytest.mark.parametrize("menu", sorted(FAULT_MENUS))
@settings(max_examples=18, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces())
def test_static_cluster_exactly_once(dispatch, menu, requests):
    """3 policies × 4 fault menus × 18 examples = 216 randomized cases."""
    reset_request_ids()
    server = _fresh_cluster(dispatch, FAULT_MENUS[menu], max_requeues=4)
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    # Nothing may be left in flight on any surviving engine.
    assert all(e.num_live == 0 for e in server.engines)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces(), seed=st.integers(0, 31))
def test_autoscaled_cluster_exactly_once_under_chaos(requests, seed):
    """Randomized faults (incl. engine deaths and scale stalls) during
    lifecycle churn must never lose or duplicate a request."""
    reset_request_ids()
    injector = FaultInjector.random(
        horizon_s=20.0, seed=seed, adapter_ids=ADAPTER_IDS,
        engine_ids=("gpu-0", "gpu-1", "gpu-2"),
        swap_fail_rate=0.3, engine_slow_rate=0.2,
        engine_fail_rate=0.05, scale_stall_rate=0.2,
    )
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        deadline_slo_factor=4.0, fault_injector=injector,
    )
    scaler = Autoscaler(AutoscaleConfig(
        min_replicas=1, max_replicas=3, interval_s=0.25,
        target_queue_per_replica=2.0, down_fraction=0.7,
        up_cooldown_s=0.25, down_cooldown_s=0.5,
        spinup_s=0.1, drain_timeout_s=2.0,
    ))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 1, autoscaler=scaler,
    )
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert server._undispatched == []
    # GPU-seconds accounting covers every replica that ever existed:
    # one initial replica plus every spawn, each with a finite lifetime.
    assert metrics.replicas_spawned == len(server.replicas) - 1
    assert metrics.gpu_seconds_total > 0.0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces(), seed=st.integers(0, 31))
def test_detector_cluster_exactly_once_under_partition_storm(requests, seed):
    """Gray failures everywhere — partitions, heartbeat loss, correlated
    host deaths, true engine deaths — with an aggressive detector that
    confirms quickly (maximizing false confirmations and zombie replay).
    Exactly-once must survive: every stale completion a zombie replays
    is fenced, never double-terminating a request."""
    reset_request_ids()
    injector = FaultInjector.random(
        horizon_s=20.0, seed=seed, adapter_ids=ADAPTER_IDS,
        engine_ids=("gpu-0", "gpu-1"), host_ids=("host-0", "host-1"),
        partition_rate=0.3, heartbeat_loss_rate=0.2,
        engine_fail_rate=0.05, host_fail_rate=0.03, engine_slow_rate=0.1,
    )
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        deadline_slo_factor=4.0, fault_injector=injector,
    )
    detector = FailureDetector(FailureDetectorConfig(
        phi_suspect=1.0, phi_confirm=3.0))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 2, detector=detector,
        num_hosts=2, max_requeues=4,
    )
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert server._undispatched == []
    # Zombie outboxes were fully reconciled: every withheld result was
    # either accepted once or fenced, never left pending.
    for rep in server.replicas:
        assert rep.engine.completion_outbox == []
    assert not server._zombie_mail


def _long_requests(n, output_tokens=192, arrival=0.0):
    return [
        Request(adapter_id=ADAPTER_IDS[i % len(ADAPTER_IDS)],
                arrival_time=arrival, input_tokens=64,
                output_tokens=output_tokens, use_task_head=False)
        for i in range(n)
    ]


def test_mid_drain_failover_exactly_once():
    """A replica that dies *while draining* must hand its in-flight work
    back through failover, and the cluster must heal and finish it."""
    faults = (
        FaultSpec(FaultKind.ENGINE_FAIL, start=2.0, target="gpu-0"),
        FaultSpec(FaultKind.ENGINE_FAIL, start=2.0, target="gpu-1"),
    )
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        fault_injector=FaultInjector(list(faults)),
    )
    scaler = Autoscaler(AutoscaleConfig(
        min_replicas=1, max_replicas=2, interval_s=0.25,
        # Huge target: the controller immediately wants to scale down,
        # so one of the two initial replicas starts draining while its
        # long-running batch is still in flight.
        target_queue_per_replica=100.0, down_fraction=0.9,
        down_cooldown_s=0.25, spinup_s=0.1, drain_timeout_s=30.0,
    ))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 2, autoscaler=scaler,
    )
    requests = _long_requests(12)
    server.submit(requests)
    metrics = server.run()

    assert_exactly_once_terminal(requests, metrics)
    # The scenario actually happened: a drain began, then both initial
    # replicas (including the draining one) died and work was re-homed.
    assert metrics.scale_down_events >= 1, "no drain ever started"
    actions = [ev.action for ev in metrics.scale_events]
    assert "fail" in actions, "no replica failed"
    # The cluster healed: fresh replicas finished the orphaned work.
    assert metrics.num_completed > 0
    assert metrics.replicas_spawned >= 1


def test_drain_requeue_does_not_consume_failover_budget():
    """Regression: re-homing during a drain timeout is bookkept as a
    ``drain_hop``, never as a failover ``requeue`` — so it must neither
    burn the ``max_requeues`` budget nor add failover backoff."""
    builder = SystemBuilder(num_adapters=len(ADAPTER_IDS), max_batch_size=8)
    scaler = Autoscaler(AutoscaleConfig(
        min_replicas=1, max_replicas=2, interval_s=0.25,
        target_queue_per_replica=100.0, down_fraction=0.9,
        down_cooldown_s=0.25, spinup_s=0.1,
        # Tiny timeout: the drain cannot finish its long batch in time,
        # so the orphans are forcibly re-homed through the requeue path.
        drain_timeout_s=0.5,
    ))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 2, autoscaler=scaler,
        # Tightest allowed failover budget plus a large backoff: any
        # accidental use of the failover accounting for drain re-homing
        # shows up as nonzero ``requeues`` (and aborts on a second hop).
        max_requeues=1, requeue_backoff_s=1.0,
    )
    requests = _long_requests(12)
    server.submit(requests)
    metrics = server.run()

    assert_exactly_once_terminal(requests, metrics)
    assert metrics.drain_timeouts >= 1, "drain never timed out"
    assert metrics.drain_requeues >= 1, "nothing was re-homed"
    # Nothing aborted: the zero failover budget was never touched.
    assert metrics.num_aborted == 0
    rehomed = [r for r in requests if r.drain_hops > 0]
    assert rehomed, "no request recorded a drain hop"
    for r in rehomed:
        assert r.requeues == 0, "drain re-home consumed failover budget"


# -- tail-tolerant dispatch (PR 8: hedging / retry budgets) -------------------


@pytest.mark.parametrize("menu", sorted(FAULT_MENUS))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces())
def test_hedged_cluster_exactly_once(menu, requests):
    """Exactly-once must survive hedged dispatch under every fault menu:
    two live copies race to a terminal, and the loser is always fenced —
    never a duplicate, never a lost request."""
    from repro.runtime import HedgeConfig, RetryBudget, TimeoutPolicy

    reset_request_ids()
    server = _fresh_cluster(
        "least-loaded", FAULT_MENUS[menu], max_requeues=4,
        hedge=HedgeConfig(min_observations=4, window=32),
        retry_budget=RetryBudget(),
        timeout_policy=TimeoutPolicy(hedge_after_s=0.25),
    )
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    # Every race that was started has exactly one fenced loser.
    assert metrics.hedge_losses == metrics.hedges_fired
    assert metrics.hedge_wins <= metrics.hedges_fired
    assert server._undispatched == []


def test_hedge_during_partition_heal_fenced_exactly_once():
    """A hedge fired against a partitioned straggler: the twin wins, the
    partition heals, and the original's late terminal must fence as a
    hedge loss — exactly once, never a duplicate terminal."""
    from repro.runtime import HedgeConfig, TimeoutPolicy

    reset_request_ids()
    faults = (
        FaultSpec(FaultKind.ENGINE_SLOW, start=0.0, duration=10.0,
                  magnitude=10.0, target="gpu-0"),
        # The straggler is also partitioned: its completions buffer in
        # the outbox until the window closes.
        FaultSpec(FaultKind.NETWORK_PARTITION, start=0.2, duration=2.0,
                  target="gpu-0"),
    )
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        fault_injector=FaultInjector(list(faults)),
    )
    # Detector thresholds far out of reach: the partitioned replica is
    # never suspected, so its work is hedged rather than seized.
    detector = FailureDetector(FailureDetectorConfig(
        phi_suspect=1e6, phi_confirm=1e7))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 2, detector=detector,
        hedge=HedgeConfig(min_observations=4, window=32),
        timeout_policy=TimeoutPolicy(hedge_after_s=0.3),
    )
    requests = [
        Request(adapter_id=ADAPTER_IDS[i % len(ADAPTER_IDS)],
                arrival_time=i * 0.01, input_tokens=64, output_tokens=8)
        for i in range(16)
    ]
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert metrics.hedges_fired >= 1, "no hedge fired at the straggler"
    assert metrics.hedge_wins >= 1, "no twin beat the partitioned host"
    assert metrics.hedge_losses == metrics.hedges_fired
    # The partition healed and every buffered terminal was reconciled.
    for rep in server.replicas:
        assert rep.engine.completion_outbox == []
    assert not server._zombie_mail


@pytest.mark.parametrize("menu", sorted(FAULT_MENUS))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces())
def test_locality_cluster_exactly_once(menu, requests):
    """Exactly-once must survive cache-state-aware placement under every
    fault menu: spills, replication pins, prefetches, and stale registry
    entries (a decision made on a dead replica's behalf re-homes through
    the ordinary failover machinery, never losing a request)."""
    from repro.runtime import AdapterPlacement, PlacementConfig

    reset_request_ids()
    placement = AdapterPlacement(PlacementConfig(
        hot_watermark=0.2, hot_copies=2, cold_watermark=0.05,
        spill_load_factor=1.0, spill_slack_rounds=2.0, interval_s=0.25,
    ))
    server = _fresh_cluster("locality", FAULT_MENUS[menu],
                            max_requeues=4, placement=placement)
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert server._undispatched == []


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces(), seed=st.integers(0, 31))
def test_locality_autoscaled_exactly_once_under_chaos(requests, seed):
    """Locality placement + lifecycle churn + randomized faults: replica
    registration/deregistration, warm-up prefetch, and drain bias must
    never lose or duplicate a request."""
    from repro.runtime import AdapterPlacement, PlacementConfig

    reset_request_ids()
    injector = FaultInjector.random(
        horizon_s=20.0, seed=seed, adapter_ids=ADAPTER_IDS,
        engine_ids=("gpu-0", "gpu-1", "gpu-2"),
        swap_fail_rate=0.3, engine_slow_rate=0.2,
        engine_fail_rate=0.05, scale_stall_rate=0.2,
    )
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        deadline_slo_factor=4.0, fault_injector=injector,
    )
    scaler = Autoscaler(AutoscaleConfig(
        min_replicas=1, max_replicas=3, interval_s=0.25,
        target_queue_per_replica=2.0, down_fraction=0.7,
        up_cooldown_s=0.25, down_cooldown_s=0.5,
        spinup_s=0.1, drain_timeout_s=2.0,
    ))
    placement = AdapterPlacement(PlacementConfig(
        hot_watermark=0.2, hot_copies=2, interval_s=0.25,
        prefetch_top_k=2,
    ))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 1, dispatch="locality",
        autoscaler=scaler, placement=placement,
    )
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert server._undispatched == []
    assert metrics.replicas_spawned == len(server.replicas) - 1


# -- disaggregated prefill/decode serving (docs/DISAGGREGATION.md) ------------


def _disagg_cluster(faults=(), prefill=1, decode=1, **kwargs):
    from repro.runtime import DisaggConfig

    injector = FaultInjector(list(faults)) if faults else None
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        deadline_slo_factor=4.0, fault_injector=injector,
    )
    disagg = DisaggConfig(prefill_replicas=prefill, decode_replicas=decode)
    return MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), prefill + decode,
        disagg=disagg, **kwargs,
    )


@pytest.mark.parametrize("menu", sorted(FAULT_MENUS))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces())
def test_disagg_cluster_exactly_once(menu, requests):
    """Exactly-once must survive the pool boundary under every fault
    menu — gpu-0 is the prefill pool and gpu-1 the decode pool, so
    ``one-dead`` kills the decode side (transferred requests rewind and
    re-prefill) and ``all-dead`` forces the abort path."""
    reset_request_ids()
    server = _disagg_cluster(FAULT_MENUS[menu], max_requeues=4)
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert server._undispatched == []
    for rep in server.replicas:
        assert rep.engine.handoff_outbox == []
        assert rep.engine.num_live == 0 or rep.engine.failed


def test_disagg_prefill_death_mid_transfer_exactly_once():
    """The prefill replica dies with hand-offs still in its outbox: its
    KV died with it, so the outbox rewinds through failover — and with
    no prefill pool left and nothing to spawn, the survivors abort the
    rest.  Exactly one terminal either way."""
    faults = (
        FaultSpec(FaultKind.ENGINE_FAIL, start=0.15, target="gpu-0"),
    )
    reset_request_ids()
    server = _disagg_cluster(faults, max_requeues=4)
    # Staggered arrivals keep the prefill replica busy past its death
    # time, so it dies with finished prefills still in its outbox
    # (transfers only leave at epoch boundaries).
    requests = [
        Request(adapter_id=ADAPTER_IDS[i % len(ADAPTER_IDS)],
                arrival_time=i * 0.04, input_tokens=64,
                output_tokens=64, use_task_head=False)
        for i in range(10)
    ]
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    # The death actually happened, with the outbox rewound through
    # failover; with no prefill pool left and nothing to spawn, the
    # survivors aborted whatever could no longer prefill.
    assert metrics.engine_failures >= 1
    assert metrics.num_aborted >= 1
    assert server._undispatched == []


def test_disagg_decode_death_mid_transfer_rehomes_exactly_once():
    """The decode replica dies while transferred requests are in flight
    toward it (and resident on it): they rewind to un-prefilled, rejoin
    the queue, and — with no decode pool left — run to completion on the
    prefill replica's local decode path, exactly once."""
    faults = (
        FaultSpec(FaultKind.ENGINE_FAIL, start=0.2, target="gpu-1"),
    )
    reset_request_ids()
    server = _disagg_cluster(faults, max_requeues=4)
    requests = _long_requests(10, output_tokens=64)
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert server._undispatched == []
    # The boundary was actually exercised before the death.
    assert server.cluster_metrics.kv_transfers >= 1


def test_disagg_partition_during_handoff_waits_for_heal():
    """A partitioned prefill replica's outbox must *wait* — the KV is
    intact, the pool just cannot reach it — and deliver on heal, never
    duplicating the hand-off."""
    faults = (
        FaultSpec(FaultKind.NETWORK_PARTITION, start=0.0, duration=1.5,
                  target="gpu-0"),
    )
    reset_request_ids()
    detector = FailureDetector(FailureDetectorConfig(
        phi_suspect=1e6, phi_confirm=1e7))
    server = _disagg_cluster(faults, detector=detector, max_requeues=4)
    requests = _long_requests(8, output_tokens=32)
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert metrics.num_aborted == 0, "heal should rescue every hand-off"
    assert server.cluster_metrics.kv_transfers >= 1
    for rep in server.replicas:
        assert rep.engine.handoff_outbox == []


def test_disagg_hedged_twin_racing_transfer_exactly_once():
    """A hedge fired while the original crosses the pool boundary: the
    twin re-enters through the prefill pool, both copies race through
    prefill -> transfer -> decode, and exactly one terminal survives."""
    from repro.runtime import HedgeConfig, TimeoutPolicy

    faults = (
        FaultSpec(FaultKind.ENGINE_SLOW, start=0.0, duration=10.0,
                  magnitude=8.0, target="gpu-1"),
    )
    reset_request_ids()
    server = _disagg_cluster(
        faults, prefill=1, decode=2,
        hedge=HedgeConfig(min_observations=4, window=32),
        timeout_policy=TimeoutPolicy(hedge_after_s=0.2),
    )
    requests = [
        Request(adapter_id=ADAPTER_IDS[i % len(ADAPTER_IDS)],
                arrival_time=i * 0.01, input_tokens=64, output_tokens=12)
        for i in range(16)
    ]
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert metrics.hedges_fired >= 1, "no hedge fired at the straggler"
    assert metrics.hedge_losses == metrics.hedges_fired
    assert server.cluster_metrics.kv_transfers >= len(requests)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(requests=traces(), seed=st.integers(0, 31))
def test_disagg_autoscaled_exactly_once_under_chaos(requests, seed):
    """Per-pool autoscaling (queue-depth prefill, KV-residency decode)
    plus randomized faults: lifecycle churn on either side of the
    boundary must never lose or duplicate a request."""
    from repro.runtime import DisaggConfig

    reset_request_ids()
    injector = FaultInjector.random(
        horizon_s=20.0, seed=seed, adapter_ids=ADAPTER_IDS,
        engine_ids=("gpu-0", "gpu-1", "gpu-2"),
        swap_fail_rate=0.3, engine_slow_rate=0.2,
        engine_fail_rate=0.05, scale_stall_rate=0.2,
    )
    builder = SystemBuilder(
        num_adapters=len(ADAPTER_IDS), max_batch_size=8,
        deadline_slo_factor=4.0, fault_injector=injector,
    )
    scale = AutoscaleConfig(
        min_replicas=1, max_replicas=2, interval_s=0.25,
        target_queue_per_replica=2.0, down_fraction=0.7,
        up_cooldown_s=0.25, down_cooldown_s=0.5,
        spinup_s=0.1, drain_timeout_s=2.0,
    )
    import dataclasses as _dc
    disagg = DisaggConfig(
        prefill_replicas=1, decode_replicas=1,
        prefill_autoscale=scale,
        decode_autoscale=_dc.replace(scale, target_utilization=0.6),
    )
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 2, disagg=disagg,
    )
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert server._undispatched == []


def test_drain_rehoming_never_spends_retry_budget():
    """Voluntary scale-down churn is not a retry: drain re-homes must
    neither charge the failover budget nor buy retry-budget tokens."""
    from repro.runtime import RetryBudget, RetryBudgetConfig

    budget = RetryBudget(RetryBudgetConfig(ratio=0.1, burst=5.0,
                                           initial=5.0))
    builder = SystemBuilder(num_adapters=len(ADAPTER_IDS), max_batch_size=8)
    scaler = Autoscaler(AutoscaleConfig(
        min_replicas=1, max_replicas=2, interval_s=0.25,
        target_queue_per_replica=100.0, down_fraction=0.9,
        down_cooldown_s=0.25, spinup_s=0.1, drain_timeout_s=0.5,
    ))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 2, autoscaler=scaler,
        max_requeues=1, retry_budget=budget,
    )
    requests = _long_requests(12)
    server.submit(requests)
    metrics = server.run()
    assert_exactly_once_terminal(requests, metrics)
    assert metrics.drain_requeues >= 1, "nothing was re-homed"
    assert budget.spent == 0, "drain re-home spent retry-budget tokens"
    assert budget.exhausted == 0
    assert metrics.num_aborted == 0
