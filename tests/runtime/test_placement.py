"""Tests for fleet-level adapter placement (runtime/placement.py).

Covers the registry units (popularity EWMA, consistent-hash homes,
resident-set model, the decide() ladder, rebalance), the engine-side
hooks (pin / demote / make_resident), and the cluster integration
(locality dispatch end to end, swap observability, autoscaler warm-up
prefetch, default-off identity).
"""

import pytest

from repro.core import SystemBuilder
from repro.runtime import (
    AdapterPlacement,
    AutoscaleConfig,
    MultiGPUServer,
    PlacementConfig,
    Request,
    reset_request_ids,
)
from repro.runtime.autoscaler import estimate_cold_start_s
from repro.workloads import RetrievalWorkload
from repro.workloads.skew import zipf_shares


def _builder(**kw):
    kw.setdefault("num_adapters", 16)
    kw.setdefault("gpu_adapter_slots", 4)
    kw.setdefault("max_batch_size", 16)
    return SystemBuilder(**kw)


def _fleet(num_replicas=3, config=None, **bkw):
    b = _builder(**bkw)
    placement = AdapterPlacement(config)
    engines = []
    for i in range(num_replicas):
        e = b.build("v-lora")
        e.engine_id = f"gpu-{i}"
        engines.append(e)
        placement.register_replica(e)
    return b, placement, engines


# -- config validation --------------------------------------------------------


class TestPlacementConfig:
    def test_defaults_valid(self):
        PlacementConfig()

    @pytest.mark.parametrize("kw", [
        dict(ewma_alpha=0.0),
        dict(ewma_alpha=1.5),
        dict(hot_watermark=0.0),
        dict(hot_copies=0),
        dict(cold_watermark=-0.1),
        dict(cold_watermark=0.5),     # >= hot_watermark
        dict(spill_load_factor=0.5),
        dict(spill_slack_rounds=-1.0),
        dict(miss_load_factor=0.5),
        dict(miss_slack_rounds=-1.0),
        dict(prefetch_top_k=-1),
        dict(interval_s=0.0),
        dict(max_pins_fraction=0.0),
        dict(vnodes=0),
    ])
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ValueError):
            PlacementConfig(**kw)

    def test_cold_watermark_zero_disables(self):
        cfg = PlacementConfig(cold_watermark=0.0)
        assert cfg.cold_watermark == 0.0


# -- popularity EWMA ----------------------------------------------------------


class TestPopularity:
    def test_shares_sum_to_one_once_warm(self):
        # After n observations the shares sum to 1 - (1-alpha)^n.
        _, placement, _ = _fleet()
        for i in range(1000):
            placement.observe(f"lora-{i % 4}")
        total = sum(placement.popularity(f"lora-{i}") for i in range(4))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_hot_adapter_dominates(self):
        _, placement, _ = _fleet()
        for i in range(400):
            placement.observe("lora-0" if i % 4 else "lora-1")
        assert (placement.popularity("lora-0")
                > 2 * placement.popularity("lora-1"))
        assert placement.top_hot(1) == ["lora-0"]

    def test_unseen_adapter_is_zero(self):
        _, placement, _ = _fleet()
        assert placement.popularity("lora-9") == 0.0
        assert placement.top_hot(3) == []

    def test_lazy_scale_renormalizes(self):
        """Tens of thousands of observations must not overflow the raw
        weights (the lazy (1-alpha) scale renormalizes periodically)."""
        _, placement, _ = _fleet()
        for i in range(30_000):
            placement.observe(f"lora-{i % 8}")
        for i in range(8):
            share = placement.popularity(f"lora-{i}")
            assert 0.0 <= share <= 1.0

    def test_popularity_decays(self):
        _, placement, _ = _fleet()
        for _ in range(100):
            placement.observe("lora-0")
        peak = placement.popularity("lora-0")
        for _ in range(300):
            placement.observe("lora-1")
        assert placement.popularity("lora-0") < peak / 4


# -- consistent-hash ring -----------------------------------------------------


class TestRing:
    def test_homes_deterministic(self):
        _, p1, _ = _fleet()
        _, p2, _ = _fleet()
        for i in range(16):
            assert (p1.homes(f"lora-{i}", 2)
                    == p2.homes(f"lora-{i}", 2))

    def test_homes_distinct(self):
        _, placement, _ = _fleet(num_replicas=4)
        homes = placement.homes("lora-0", 3)
        assert len(homes) == len(set(homes)) == 3

    def test_churn_only_rehomes_lost_arcs(self):
        """Removing one replica must keep every adapter not homed on it
        in place — the property crc32-mod-n lacks."""
        _, placement, engines = _fleet(num_replicas=4)
        before = {f"lora-{i}": placement.homes(f"lora-{i}", 1)[0]
                  for i in range(16)}
        placement.deregister_replica("gpu-3")
        moved = 0
        for a, old in before.items():
            new = placement.homes(a, 1)[0]
            if old == "gpu-3":
                assert new != "gpu-3"
            elif new != old:
                moved += 1
        assert moved == 0

    def test_empty_fleet_has_no_homes(self):
        placement = AdapterPlacement()
        assert placement.homes("lora-0", 2) == []


# -- resident-set model -------------------------------------------------------


class TestResidentModel:
    def test_seeded_from_engine_truth(self):
        _, placement, engines = _fleet()
        truth = set(engines[0].adapters.resident_ids)
        assert set(placement.holders(next(iter(truth)))) >= {"gpu-0"}

    def test_note_assignment_models_lru(self):
        b, placement, engines = _fleet(gpu_adapter_slots=2,
                                       num_adapters=16)
        # Model has 2 slots; a third assignment evicts the LRU entry.
        placement._resident["gpu-0"] = {}
        placement.note_assignment("lora-10", "gpu-0")
        placement.note_assignment("lora-11", "gpu-0")
        placement.note_assignment("lora-12", "gpu-0")
        assert "lora-10" not in placement._resident["gpu-0"]
        assert set(placement._resident["gpu-0"]) == {"lora-11", "lora-12"}

    def test_refresh_drops_stale_entries(self):
        _, placement, engines = _fleet()
        placement._resident["gpu-0"]["lora-15"] = 10 ** 9  # stale lie
        placement.refresh_from_engines()
        assert ("lora-15" in placement._resident["gpu-0"]) == \
            engines[0].adapters.is_resident("lora-15")

    def test_replica_cache_value_tracks_popularity(self):
        _, placement, engines = _fleet()
        for _ in range(200):
            placement.observe("lora-0")
        placement._resident["gpu-0"] = {"lora-0": 1}
        placement._resident["gpu-1"] = {"lora-15": 1}
        assert (placement.replica_cache_value("gpu-0")
                > placement.replica_cache_value("gpu-1"))


# -- the decide() ladder ------------------------------------------------------


class TestDecide:
    def test_home_hit(self):
        _, placement, _ = _fleet()
        loads = {"gpu-0": 0.0, "gpu-1": 0.0, "gpu-2": 0.0}
        home = placement.homes("lora-0", 1)[0]
        placement._resident[home]["lora-0"] = 1
        chosen, why = placement.decide("lora-0", loads)
        assert chosen == home and why == "home-hit"

    def test_spill_to_resident_holder(self):
        cfg = PlacementConfig(spill_load_factor=1.0,
                              spill_slack_rounds=0.0)
        _, placement, _ = _fleet(config=cfg)
        home = placement.homes("lora-0", 1)[0]
        other = next(r for r in ("gpu-0", "gpu-1", "gpu-2") if r != home)
        placement._resident[home]["lora-0"] = 1
        placement._resident[other]["lora-0"] = 2
        loads = {r: 0.0 for r in ("gpu-0", "gpu-1", "gpu-2")}
        loads[home] = 100.0  # overloaded home
        chosen, why = placement.decide("lora-0", loads)
        assert chosen == other and why == "spill-hit"
        assert placement.spills == 1

    def test_home_miss_pays_swap_at_home(self):
        _, placement, _ = _fleet()
        for rid in ("gpu-0", "gpu-1", "gpu-2"):
            placement._resident[rid].pop("lora-0", None)
        loads = {"gpu-0": 0.0, "gpu-1": 0.0, "gpu-2": 0.0}
        chosen, why = placement.decide("lora-0", loads)
        assert chosen == placement.homes("lora-0", 1)[0]
        assert why == "home-miss"

    def test_fallback_when_no_home_routable(self):
        _, placement, _ = _fleet()
        home = placement.homes("lora-0", 1)[0]
        loads = {r: float(i) for i, r in
                 enumerate(rid for rid in ("gpu-0", "gpu-1", "gpu-2")
                           if rid != home)}
        for res in placement._resident.values():
            res.pop("lora-0", None)
        chosen, why = placement.decide("lora-0", loads)
        assert chosen in loads
        assert why in ("home-miss", "fallback-miss")

    def test_decide_records_intended_residency(self):
        _, placement, _ = _fleet()
        loads = {"gpu-0": 0.0, "gpu-1": 0.0, "gpu-2": 0.0}
        chosen, _ = placement.decide("lora-9", loads)
        assert "lora-9" in placement._resident[chosen]

    def test_empty_loads_raise(self):
        _, placement, _ = _fleet()
        with pytest.raises(ValueError, match="routable"):
            placement.decide("lora-0", {})

    def test_replicated_adapter_spreads_by_load(self):
        cfg = PlacementConfig(hot_copies=2)
        _, placement, _ = _fleet(config=cfg)
        placement._replicated.add("lora-0")
        h1, h2 = placement.homes("lora-0", 2)
        placement._resident[h1]["lora-0"] = 1
        placement._resident[h2]["lora-0"] = 2
        loads = {r: 0.0 for r in ("gpu-0", "gpu-1", "gpu-2")}
        loads[h1] = 5.0
        chosen, why = placement.decide("lora-0", loads)
        assert chosen == h2 and why == "home-hit"


# -- rebalance: replication + demotion ---------------------------------------


class TestRebalance:
    def test_hot_adapter_promoted_and_pinned(self):
        cfg = PlacementConfig(hot_watermark=0.2, hot_copies=2)
        _, placement, engines = _fleet(config=cfg)
        for _ in range(300):
            placement.observe("lora-0")
        stats = placement.rebalance()
        assert stats["replications"] == 1
        assert "lora-0" in placement._replicated
        pinned_on = [e.engine_id for e in engines
                     if "lora-0" in e.adapters.pinned]
        assert set(pinned_on) == set(placement.homes("lora-0", 2))

    def test_cooled_adapter_unpinned(self):
        cfg = PlacementConfig(hot_watermark=0.2, hot_copies=2,
                              ewma_alpha=0.05)
        _, placement, engines = _fleet(config=cfg)
        for _ in range(200):
            placement.observe("lora-0")
        placement.rebalance()
        assert "lora-0" in placement._replicated
        for i in range(400):
            placement.observe(f"lora-{1 + i % 8}")
        placement.rebalance()
        assert "lora-0" not in placement._replicated
        assert all("lora-0" not in e.adapters.pinned for e in engines)

    def test_cold_demotion_frees_non_home_slots(self):
        cfg = PlacementConfig(hot_watermark=0.5, cold_watermark=0.01)
        _, placement, engines = _fleet(config=cfg)
        # Make lora-0 resident everywhere, then give all traffic to
        # others so its share decays below the cold watermark.
        for e in engines:
            e.adapters.make_resident("lora-0", 0.0)
        placement.refresh_from_engines()
        for i in range(600):
            placement.observe(f"lora-{1 + i % 4}")
        stats = placement.rebalance()
        primary = placement.homes("lora-0", 1)[0]
        for e in engines:
            if e.engine_id == primary:
                continue
            assert not e.adapters.is_resident("lora-0")
        assert stats["demotions"] >= 1

    def test_pin_cap_respected(self):
        cfg = PlacementConfig(hot_watermark=0.05, hot_copies=3,
                              max_pins_fraction=0.5)
        _, placement, engines = _fleet(config=cfg, gpu_adapter_slots=4)
        for i in range(1000):
            placement.observe(f"lora-{i % 8}")
        placement.rebalance()
        for e in engines:
            assert len(e.adapters.pinned) <= 2  # 0.5 * 4 slots


# -- engine-side hooks --------------------------------------------------------


class TestAdapterManagerHooks:
    def test_pin_biases_eviction(self):
        b = _builder(num_adapters=8, gpu_adapter_slots=2)
        e = b.build("v-lora")
        am = e.adapters
        am.demote_all = None  # no-op guard; keep linters quiet
        resident = list(am.resident_ids)
        am.pin(resident[0])
        am.make_resident("lora-7", now=1.0)
        assert am.is_resident(resident[0])  # pinned survivor
        assert am.is_resident("lora-7")

    def test_pin_never_wedges(self):
        b = _builder(num_adapters=8, gpu_adapter_slots=2)
        am = b.build("v-lora").adapters
        for a in list(am.resident_ids):
            am.pin(a)
        # All slots pinned: eviction must fall back, not raise.
        am.make_resident("lora-6", now=1.0)
        assert am.is_resident("lora-6")

    def test_demote_is_stall_free_and_reversible(self):
        b = _builder(num_adapters=8, gpu_adapter_slots=4)
        am = b.build("v-lora").adapters
        a = am.resident_ids[0]
        assert am.demote(a) is True
        assert am.demote(a) is False
        assert not am.is_resident(a)
        assert am.make_resident(a, now=2.0) is True
        assert am.is_resident(a)

    def test_pin_unknown_adapter_raises(self):
        b = _builder(num_adapters=4)
        am = b.build("v-lora").adapters
        with pytest.raises(KeyError):
            am.pin("nope")


# -- autoscaler warm-up prefetch ----------------------------------------------


class TestPrefetch:
    def test_plan_is_hot_minus_resident_capped(self):
        _, placement, engines = _fleet(num_adapters=16,
                                       gpu_adapter_slots=4)
        for i in range(500):
            placement.observe(f"lora-{8 + i % 6}")
        b2 = _builder(num_adapters=16, gpu_adapter_slots=4)
        fresh = b2.build("v-lora")
        plan = placement.prefetch_plan(fresh)
        assert plan  # hot set differs from warm-start residents
        assert not set(plan) & set(fresh.adapters.resident_ids)
        assert len(plan) <= fresh.adapters.gpu_slots

    def test_prefetch_extends_cold_start(self):
        b = _builder(num_adapters=16, gpu_adapter_slots=8)
        cfg = AutoscaleConfig()
        base = estimate_cold_start_s(b.build("v-lora"), cfg)
        extended = estimate_cold_start_s(
            b.build("v-lora"), cfg,
            prefetch_ids=["lora-10", "lora-11", "lora-12"])
        assert extended > base
        # Already-resident ids are not double-charged.
        e = b.build("v-lora")
        same = estimate_cold_start_s(e, cfg,
                                     prefetch_ids=e.adapters.resident_ids)
        assert same == pytest.approx(base)

    def test_apply_prefetch_makes_resident(self):
        _, placement, _ = _fleet()
        b2 = _builder(num_adapters=16, gpu_adapter_slots=8)
        fresh = b2.build("v-lora")
        placement.apply_prefetch(fresh, ["lora-12", "lora-13"], now=0.0)
        assert fresh.adapters.is_resident("lora-12")
        assert fresh.adapters.is_resident("lora-13")
        assert placement.prefetches == 2


# -- cluster integration ------------------------------------------------------


def _zipf_workload(adapter_ids, rate=24.0, duration=20.0, seed=0):
    return RetrievalWorkload(
        adapter_ids, rate_rps=rate, duration_s=duration,
        adapter_shares=zipf_shares(len(adapter_ids), 1.05),
        adapter_burst=4, seed=seed,
    ).generate()


class TestClusterIntegration:
    def test_locality_end_to_end(self):
        b = _builder(num_adapters=64, gpu_adapter_slots=8)
        server = MultiGPUServer.replicate(
            lambda: b.build("v-lora"), 4, dispatch="locality")
        reset_request_ids()
        reqs = _zipf_workload(b.adapter_ids)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.num_completed == len(reqs)
        s = metrics.summary()
        assert "swap_ins" in s
        assert 0.0 <= s["adapter_cache_hit_ratio"] <= 1.0

    def test_locality_cuts_swaps_vs_least_loaded(self):
        """The headline property, miniature: on a skewed trace over a
        small fleet, cache-state-aware routing swaps less."""
        def run(dispatch):
            b = _builder(num_adapters=64, gpu_adapter_slots=8)
            placement = AdapterPlacement()
            server = MultiGPUServer.replicate(
                lambda: b.build("v-lora"), 4, dispatch=dispatch,
                placement=placement)
            reset_request_ids()
            reqs = _zipf_workload(b.adapter_ids)
            server.submit(reqs)
            m = server.run()
            assert m.num_completed == len(reqs)
            return m.summary().get("swap_ins", 0.0)

        assert run("locality") < run("least-loaded")

    def test_locality_attaches_default_registry(self):
        b = _builder()
        server = MultiGPUServer.replicate(
            lambda: b.build("v-lora"), 2, dispatch="locality")
        assert isinstance(server.placement, AdapterPlacement)

    def test_placement_forces_epoched_loop(self):
        b = _builder()
        server = MultiGPUServer.replicate(
            lambda: b.build("v-lora"), 2, dispatch="least-loaded",
            placement=AdapterPlacement())
        reset_request_ids()
        reqs = [Request(adapter_id=b.adapter_ids[0], arrival_time=0.0,
                        input_tokens=32, output_tokens=4)]
        server.submit(reqs)
        # Epoched mode parks requests cluster-side instead of placing
        # them immediately.
        assert all(e.num_live == 0 for e in server.engines)
        m = server.run()
        assert m.num_completed == 1

    def test_no_placement_is_default_off(self):
        b = _builder()
        server = MultiGPUServer.replicate(
            lambda: b.build("v-lora"), 2)
        assert server.placement is None
        reset_request_ids()
        reqs = [Request(adapter_id=b.adapter_ids[0], arrival_time=0.0,
                        input_tokens=32, output_tokens=4)]
        server.submit(reqs)
        # Static path: requests placed immediately, no epoched queue.
        assert sum(e.num_live for e in server.engines) == 1

    def test_locality_deterministic(self):
        def digest():
            b = _builder(num_adapters=32, gpu_adapter_slots=8)
            server = MultiGPUServer.replicate(
                lambda: b.build("v-lora"), 3, dispatch="locality")
            reset_request_ids()
            reqs = _zipf_workload(b.adapter_ids, duration=10.0)
            server.submit(reqs)
            return server.run().summary()

        assert digest() == digest()

    def test_spawned_replica_prefetches_hot_set(self):
        from repro.runtime import Autoscaler

        b = _builder(num_adapters=32, gpu_adapter_slots=8)
        scaler = Autoscaler(AutoscaleConfig(
            min_replicas=1, max_replicas=4,
            target_queue_per_replica=2.0))
        server = MultiGPUServer.replicate(
            lambda: b.build("v-lora"), 1, dispatch="locality",
            autoscaler=scaler)
        reset_request_ids()
        # Reverse the Zipf head onto high-index adapters so the hot set
        # is disjoint from every replica's warm-start residents
        # (lora-0..7) and the prefetch plan is necessarily non-empty.
        shares = list(reversed(zipf_shares(32, 1.05)))
        reqs = RetrievalWorkload(
            b.adapter_ids, rate_rps=48.0, duration_s=15.0,
            adapter_shares=shares, adapter_burst=4, seed=0,
        ).generate()
        server.submit(reqs)
        m = server.run()
        assert m.num_completed == len(reqs)
        spawned = [rep for rep in server.replicas
                   if rep.spawned_at > 0.0]
        assert spawned, "autoscaler never scaled up"
        assert m.summary().get("adapters_prefetched", 0.0) > 0
