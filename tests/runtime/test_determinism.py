"""Determinism: the simulator is a pure function of (config, seed).

Two runs with the same seed must be **bit-identical** — not "close":
the same floats in every summary statistic and the same per-request
event trace, across single engines, static clusters, seeded chaos, and
autoscaled lifecycle churn.  A golden snapshot pins seed 0 so that
accidental nondeterminism (dict-order iteration, id()-keyed tie-breaks,
hidden RNG draws) shows up as a diff against a checked-in file, not
just against a re-run in the same process.

Regenerate the snapshot after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/runtime/test_determinism.py --regen
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.core import SystemBuilder
from repro.runtime import (
    AutoscaleConfig,
    Autoscaler,
    FailureDetector,
    FailureDetectorConfig,
    FaultInjector,
    FaultKind,
    FaultSpec,
    MultiGPUServer,
    reset_request_ids,
)
from repro.workloads import RetrievalWorkload, diurnal_burst_trace

pytestmark = pytest.mark.property

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "determinism.json")
ADAPTER_IDS = [f"lora-{i}" for i in range(4)]


def _trace_digest(metrics) -> str:
    """SHA-256 over the full per-request event trace (order-free)."""
    rows = sorted(
        [("done", r.request_id, r.adapter_id, r.arrival_time,
          r.first_token_time, r.finish_time) for r in metrics.records]
        + [("abort", a.request_id, a.adapter_id, a.arrival_time,
            a.abort_time, a.reason) for a in metrics.aborts]
    )
    blob = json.dumps(rows, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _fingerprint(metrics) -> dict:
    fp = dict(metrics.summary())
    fp["trace_digest"] = _trace_digest(metrics)
    return fp


def _retrieval(seed, rate_rps=14.0, duration_s=2.0, slo_s=4.0):
    return RetrievalWorkload(
        adapter_ids=ADAPTER_IDS, rate_rps=rate_rps, duration_s=duration_s,
        use_task_heads=False, slo_s=slo_s, seed=seed,
    ).generate()


def _run_engine(seed):
    builder = SystemBuilder(num_adapters=4, max_batch_size=8)
    engine = builder.build("v-lora")
    engine.submit(_retrieval(seed))
    return _fingerprint(engine.run())


def _run_cluster(seed):
    builder = SystemBuilder(num_adapters=4, max_batch_size=8)
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 3, dispatch="least-loaded",
        health_aware=True,
    )
    server.submit(_retrieval(seed, rate_rps=20.0))
    return _fingerprint(server.run())


def _run_chaos(seed):
    injector = FaultInjector.random(
        horizon_s=10.0, seed=seed, adapter_ids=ADAPTER_IDS,
        engine_ids=("gpu-0", "gpu-1"),
        swap_fail_rate=0.5, swap_slow_rate=0.3, kv_pressure_rate=0.3,
        engine_slow_rate=0.2, engine_fail_rate=0.1,
    )
    builder = SystemBuilder(
        num_adapters=4, max_batch_size=8, fault_injector=injector,
        deadline_slo_factor=4.0,
    )
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 2, max_requeues=3,
    )
    server.submit(_retrieval(seed, rate_rps=20.0))
    return _fingerprint(server.run())


def _run_autoscaled(seed):
    builder = SystemBuilder(num_adapters=4, max_batch_size=8)
    requests = diurnal_burst_trace(
        ADAPTER_IDS, peak_rps=20.0, trough_rps=2.0, period_s=8.0,
        duration_s=12.0, top_adapter_share=0.5, use_task_heads=False,
        slo_s=4.0, seed=seed,
        injector=FaultInjector([
            FaultSpec(FaultKind.LOAD_BURST, start=3.0, duration=2.0,
                      magnitude=2.0),
        ]),
    )
    scaler = Autoscaler(AutoscaleConfig(
        min_replicas=1, max_replicas=3, interval_s=0.5,
        target_queue_per_replica=4.0, down_fraction=0.6,
        down_cooldown_s=1.0, spinup_s=0.25, drain_timeout_s=10.0,
    ))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 1, autoscaler=scaler,
    )
    server.submit(requests)
    metrics = server.run()
    fp = _fingerprint(metrics)
    fp["scale_actions"] = ",".join(ev.action for ev in metrics.scale_events)
    return fp


def _run_partition_chaos(seed):
    """Gray-failure chaos: partitions, heartbeat loss, correlated host
    deaths, true engine deaths — under an aggressive φ-accrual detector
    with lease fencing.  Pins heartbeat scheduling, withheld-delivery
    ordering, lease-epoch bumps, and zombie fencing to the golden."""
    injector = FaultInjector.random(
        horizon_s=10.0, seed=seed, adapter_ids=ADAPTER_IDS,
        engine_ids=("gpu-0", "gpu-1", "gpu-2"),
        host_ids=("host-0", "host-1"),
        partition_rate=0.25, heartbeat_loss_rate=0.15,
        engine_fail_rate=0.1, host_fail_rate=0.05,
    )
    builder = SystemBuilder(
        num_adapters=4, max_batch_size=8, fault_injector=injector,
        deadline_slo_factor=4.0,
    )
    detector = FailureDetector(FailureDetectorConfig(
        phi_suspect=1.0, phi_confirm=3.0))
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 3, max_requeues=3,
        detector=detector, num_hosts=2,
    )
    server.submit(_retrieval(seed, rate_rps=20.0))
    return _fingerprint(server.run())


def _run_disagg(seed):
    """Disaggregated prefill/decode pools with a priced KV hand-off.

    Pins the transfer pass end to end: outbox drain order, target
    choice by KV headroom, wire-cost floats from the memoized transfer
    cache, and the not-before admission floor on the decode side."""
    from repro.runtime import DisaggConfig

    builder = SystemBuilder(num_adapters=4, max_batch_size=8)
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), 3,
        disagg=DisaggConfig(prefill_replicas=1, decode_replicas=2),
    )
    server.submit(_retrieval(seed, rate_rps=20.0, duration_s=3.0))
    return _fingerprint(server.run())


SCENARIOS = {
    "engine": _run_engine,
    "cluster": _run_cluster,
    "chaos": _run_chaos,
    "autoscaled": _run_autoscaled,
    "partition_chaos": _run_partition_chaos,
    "disagg": _run_disagg,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 7])
def test_same_seed_bit_identical(name, seed):
    runs = []
    for _ in range(2):
        reset_request_ids()
        runs.append(SCENARIOS[name](seed))
    # Exact dict equality: every float bit-identical, every digest equal.
    assert runs[0] == runs[1]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_different_seeds_differ(name):
    """The seed actually reaches the workload (guards against a scenario
    silently ignoring it, which would make the golden test vacuous)."""
    reset_request_ids()
    a = SCENARIOS[name](0)
    reset_request_ids()
    b = SCENARIOS[name](7)
    assert a["trace_digest"] != b["trace_digest"]


def _golden_payload():
    payload = {}
    for name in sorted(SCENARIOS):
        reset_request_ids()
        payload[name] = SCENARIOS[name](0)
    return payload


def test_golden_seed_snapshot():
    """Seed-0 results must match the checked-in snapshot exactly.

    JSON round-trips Python floats losslessly (repr is shortest
    round-trip), so == here means bit-identical."""
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    fresh = json.loads(json.dumps(_golden_payload()))
    assert fresh == golden, (
        "simulator output diverged from the golden seed-0 snapshot; if "
        "the change is intentional, regenerate with: PYTHONPATH=src "
        "python tests/runtime/test_determinism.py --regen"
    )


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv[1:]:
        sys.exit("usage: python tests/runtime/test_determinism.py --regen")
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(_golden_payload(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")
