"""Tests for multi-GPU dispatch policies and tensor parallelism."""

import pytest

from repro.core import SystemBuilder
from repro.hardware import A100_80GB
from repro.models import INTERNVL2_76B, QWEN_VL_7B, IterationCostModel
from repro.runtime import MultiGPUServer, Request, UnifiedMemoryManager
from repro.workloads import RetrievalWorkload


@pytest.fixture(scope="module")
def builder():
    return SystemBuilder(num_adapters=4, max_batch_size=16)


def burst(adapters, n, arrival=0.0):
    return [
        Request(adapter_id=adapters[i % len(adapters)],
                arrival_time=arrival + 0.001 * i,
                input_tokens=64, output_tokens=4)
        for i in range(n)
    ]


class TestDispatchPolicies:
    def test_round_robin_spreads_evenly(self, builder):
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), 2, dispatch="round-robin"
        )
        server.submit(burst(builder.adapter_ids, 10))
        server.run()
        completed = server.per_engine_completed()
        assert completed == [5, 5]

    def test_affinity_pins_adapters(self, builder):
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), 2, dispatch="adapter-affinity"
        )
        server.submit(burst(builder.adapter_ids, 16))
        server.run()
        # Every adapter's requests landed on exactly one engine.
        for engine in server.engines:
            by_adapter = engine.metrics.by_adapter()
            for adapter, recs in by_adapter.items():
                others = [
                    e for e in server.engines
                    if e is not engine and adapter in e.metrics.by_adapter()
                ]
                assert not others, adapter

    def test_affinity_trades_balance_for_locality(self, builder):
        """Pinning adapters to home replicas skews per-replica load
        under adapter-popularity skew (the future-work trade-off)."""
        def spread(dispatch):
            server = MultiGPUServer.replicate(
                lambda: builder.build("v-lora"), 2, dispatch=dispatch
            )
            wl = RetrievalWorkload(builder.adapter_ids, rate_rps=16.0,
                                   duration_s=15.0, top_adapter_share=0.6,
                                   seed=8)
            server.submit(wl.generate())
            server.run()
            counts = server.per_engine_completed()
            return max(counts) - min(counts)

        assert spread("adapter-affinity") >= spread("round-robin")

    def test_unknown_policy_rejected(self, builder):
        with pytest.raises(ValueError, match="unknown dispatch"):
            MultiGPUServer([builder.build("v-lora")], dispatch="random")


class TestTensorParallel:
    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=0)

    def test_tp_speeds_up_decode(self):
        tp1 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=1)
        tp4 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=4)
        assert tp4.decode_seconds([512] * 8) < tp1.decode_seconds([512] * 8)

    def test_allreduce_is_not_free(self):
        """TP-4 must be sub-linear: all-reduces eat part of the gain."""
        tp1 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=1)
        tp4 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=4)
        speedup = tp1.decode_seconds([512] * 8) / tp4.decode_seconds([512] * 8)
        assert 1.2 < speedup < 4.0

    def test_76b_needs_tp_on_a100(self):
        with pytest.raises(ValueError, match="does not fit"):
            UnifiedMemoryManager(INTERNVL2_76B, A100_80GB, tp_degree=1)
        mm = UnifiedMemoryManager(INTERNVL2_76B, A100_80GB, tp_degree=4)
        assert mm.kv_token_capacity > 10_000

    def test_76b_serves_end_to_end(self):
        b = SystemBuilder(model=INTERNVL2_76B, num_adapters=2,
                          tensor_parallel=4, max_batch_size=16)
        engine = b.build("v-lora")
        engine.submit(burst(b.adapter_ids, 6))
        metrics = engine.run()
        assert metrics.num_completed == 6

    def test_tp_lowers_e2e_latency_for_7b(self):
        def run(tp):
            b = SystemBuilder(num_adapters=2, tensor_parallel=tp)
            engine = b.build("v-lora")
            engine.submit(burst(b.adapter_ids, 12))
            return engine.run().mean_latency()

        assert run(2) < run(1)
