"""Tests for multi-GPU dispatch policies and tensor parallelism."""

import pytest

from repro.core import SystemBuilder
from repro.hardware import A100_80GB
from repro.models import INTERNVL2_76B, QWEN_VL_7B, IterationCostModel
from repro.runtime import MultiGPUServer, Request, UnifiedMemoryManager
from repro.workloads import RetrievalWorkload


@pytest.fixture(scope="module")
def builder():
    return SystemBuilder(num_adapters=4, max_batch_size=16)


def burst(adapters, n, arrival=0.0):
    return [
        Request(adapter_id=adapters[i % len(adapters)],
                arrival_time=arrival + 0.001 * i,
                input_tokens=64, output_tokens=4)
        for i in range(n)
    ]


class TestDispatchPolicies:
    def test_round_robin_spreads_evenly(self, builder):
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), 2, dispatch="round-robin"
        )
        server.submit(burst(builder.adapter_ids, 10))
        server.run()
        completed = server.per_engine_completed()
        assert completed == [5, 5]

    def test_affinity_pins_adapters(self, builder):
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), 2, dispatch="adapter-affinity"
        )
        server.submit(burst(builder.adapter_ids, 16))
        server.run()
        # Every adapter's requests landed on exactly one engine.
        for engine in server.engines:
            by_adapter = engine.metrics.by_adapter()
            for adapter, recs in by_adapter.items():
                others = [
                    e for e in server.engines
                    if e is not engine and adapter in e.metrics.by_adapter()
                ]
                assert not others, adapter

    def test_affinity_trades_balance_for_locality(self, builder):
        """Pinning adapters to home replicas skews per-replica load
        under adapter-popularity skew (the future-work trade-off)."""
        def spread(dispatch):
            server = MultiGPUServer.replicate(
                lambda: builder.build("v-lora"), 2, dispatch=dispatch
            )
            wl = RetrievalWorkload(builder.adapter_ids, rate_rps=16.0,
                                   duration_s=15.0, top_adapter_share=0.6,
                                   seed=8)
            server.submit(wl.generate())
            server.run()
            counts = server.per_engine_completed()
            return max(counts) - min(counts)

        assert spread("adapter-affinity") >= spread("round-robin")

    def test_unknown_policy_rejected(self, builder):
        with pytest.raises(ValueError, match="unknown dispatch"):
            MultiGPUServer([builder.build("v-lora")], dispatch="random")

    def test_affinity_rehoming_spreads_over_survivors(self, builder):
        """Regression: excluding one replica must not funnel every
        adapter it homed onto a single neighbor.

        The old linear probe sent all of a down replica's adapters to
        ``(home + 1) % n``; the double-hash stride spreads them across
        the survivors while still giving each adapter one deterministic
        fallback.
        """
        import zlib

        n = 8
        down = 3
        homed = [f"aff-{i}" for i in range(4000)
                 if zlib.crc32(f"aff-{i}".encode()) % n == down]
        assert len(homed) > 100
        from repro.models.lora import LoRAAdapterSpec

        b = SystemBuilder(
            max_batch_size=16,
            adapter_specs=tuple(
                LoRAAdapterSpec(a, QWEN_VL_7B, rank=16) for a in homed
            ),
        )
        server = MultiGPUServer.replicate(
            lambda: b.build("v-lora"), n, dispatch="adapter-affinity"
        )
        engines = server.engines
        allowed = [i for i in range(n) if i != down]
        requests = [
            Request(adapter_id=a, arrival_time=0.001 * i,
                    input_tokens=8, output_tokens=2)
            for i, a in enumerate(homed)
        ]
        server._submit_affinity(requests, engines, allowed)
        counts = [len(e.pending_requests) for e in engines]
        assert counts[down] == 0
        assert sum(counts) == len(homed)
        # Linear probing put 100% on (down + 1) % n; the stride probe
        # must leave no survivor with more than half the re-homed load.
        assert max(counts) < 0.5 * len(homed)
        # Every survivor should get some share (7 strides over ~500
        # adapters cover all of them).
        assert all(counts[i] > 0 for i in allowed)

    def test_affinity_rehoming_is_deterministic_per_adapter(self, builder):
        """Each adapter's fallback home is stable across bursts."""
        n = 4
        b = SystemBuilder(num_adapters=12, max_batch_size=16)
        server = MultiGPUServer.replicate(
            lambda: b.build("v-lora"), n, dispatch="adapter-affinity"
        )
        engines = server.engines
        allowed = [0, 2, 3]
        reqs = burst(b.adapter_ids, 24)
        server._submit_affinity(reqs, engines, allowed)
        placed = {}
        for i, e in enumerate(engines):
            for r in e.pending_requests:
                placed.setdefault(r.adapter_id, set()).add(i)
        assert all(len(homes) == 1 for homes in placed.values())


class TestTensorParallel:
    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=0)

    def test_tp_speeds_up_decode(self):
        tp1 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=1)
        tp4 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=4)
        assert tp4.decode_seconds([512] * 8) < tp1.decode_seconds([512] * 8)

    def test_allreduce_is_not_free(self):
        """TP-4 must be sub-linear: all-reduces eat part of the gain."""
        tp1 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=1)
        tp4 = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=4)
        speedup = tp1.decode_seconds([512] * 8) / tp4.decode_seconds([512] * 8)
        assert 1.2 < speedup < 4.0

    def test_76b_needs_tp_on_a100(self):
        with pytest.raises(ValueError, match="does not fit"):
            UnifiedMemoryManager(INTERNVL2_76B, A100_80GB, tp_degree=1)
        mm = UnifiedMemoryManager(INTERNVL2_76B, A100_80GB, tp_degree=4)
        assert mm.kv_token_capacity > 10_000

    def test_76b_serves_end_to_end(self):
        b = SystemBuilder(model=INTERNVL2_76B, num_adapters=2,
                          tensor_parallel=4, max_batch_size=16)
        engine = b.build("v-lora")
        engine.submit(burst(b.adapter_ids, 6))
        metrics = engine.run()
        assert metrics.num_completed == 6

    def test_tp_lowers_e2e_latency_for_7b(self):
        def run(tp):
            b = SystemBuilder(num_adapters=2, tensor_parallel=tp)
            engine = b.build("v-lora")
            engine.submit(burst(b.adapter_ids, 12))
            return engine.run().mean_latency()

        assert run(2) < run(1)
