"""Tests for unified memory planning and adapter residency."""

import pytest

from repro.hardware import A10, A100_80GB, TransferModel
from repro.models import LLAVA15_13B, QWEN_VL_7B, LoRAAdapterSpec
from repro.runtime import AdapterManager, UnifiedMemoryManager


class TestUnifiedMemory:
    def test_plan_adds_up(self):
        mm = UnifiedMemoryManager(QWEN_VL_7B, A100_80GB, adapter_slots=8)
        p = mm.plan
        assert (p.weights_bytes + p.adapter_pool_bytes
                + p.activation_reserve_bytes + p.kv_bytes) <= p.total_bytes
        assert p.kv_bytes > 0

    def test_kv_capacity_reasonable(self):
        """~55 GB of KV at 0.5 MB/token -> ~1e5 tokens on A100-80GB."""
        mm = UnifiedMemoryManager(QWEN_VL_7B, A100_80GB, adapter_slots=8)
        assert 60_000 < mm.kv_token_capacity < 140_000

    def test_more_slots_less_kv(self):
        few = UnifiedMemoryManager(QWEN_VL_7B, A100_80GB, adapter_slots=2)
        many = UnifiedMemoryManager(QWEN_VL_7B, A100_80GB, adapter_slots=64)
        assert many.kv_token_capacity < few.kv_token_capacity

    def test_model_too_big_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            UnifiedMemoryManager(LLAVA15_13B, A10)

    def test_build_kv_cache_matches_plan(self):
        mm = UnifiedMemoryManager(QWEN_VL_7B, A100_80GB, adapter_slots=4)
        kv = mm.build_kv_cache()
        assert kv.num_blocks == mm.kv_block_count
        assert kv.kv_bytes_per_token == QWEN_VL_7B.kv_bytes_per_token

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            UnifiedMemoryManager(QWEN_VL_7B, A100_80GB, adapter_slots=-1)


def specs(n, model=QWEN_VL_7B):
    return [LoRAAdapterSpec(f"a{i}", model) for i in range(n)]


class TestAdapterManager:
    def make(self, n=4, slots=2, async_swap=True):
        return AdapterManager(
            specs(n), gpu_slots=slots,
            transfer_model=TransferModel(A100_80GB),
            async_swap=async_swap,
        )

    def test_warm_start_fills_slots(self):
        mgr = self.make(n=4, slots=2)
        assert len(mgr.resident_ids) == 2

    def test_resident_adapters_are_free(self):
        mgr = self.make()
        stall = mgr.ensure_resident(["a0"], now=0.0)
        assert stall == 0.0

    def test_miss_costs_a_swap(self):
        mgr = self.make()
        stall = mgr.ensure_resident(["a3"], now=0.0)
        assert stall > 0.0
        assert mgr.is_resident("a3")
        assert mgr.total_swap_ins() == 1

    def test_lru_eviction(self):
        mgr = self.make(n=3, slots=2)  # a0, a1 resident
        mgr.ensure_resident(["a1"], now=1.0)
        mgr.ensure_resident(["a2"], now=2.0)  # evicts a0 (older)
        assert not mgr.is_resident("a0")
        assert mgr.is_resident("a1") and mgr.is_resident("a2")

    def test_async_swap_cheaper_than_sync(self):
        sync = self.make(async_swap=False).ensure_resident(["a3"], 0.0)
        async_ = self.make(async_swap=True).ensure_resident(["a3"], 0.0)
        assert async_ < sync

    def test_batch_larger_than_slots_rejected(self):
        mgr = self.make(n=4, slots=2)
        with pytest.raises(RuntimeError):
            mgr.ensure_resident(["a0", "a1", "a2"], now=0.0)

    def test_unknown_adapter_lists_known(self):
        mgr = self.make()
        with pytest.raises(KeyError, match="a0"):
            mgr.ensure_resident(["zz"], now=0.0)

    def test_duplicate_ids_rejected(self):
        bad = specs(2) + [LoRAAdapterSpec("a0", QWEN_VL_7B)]
        with pytest.raises(ValueError):
            AdapterManager(bad, gpu_slots=2,
                           transfer_model=TransferModel(A100_80GB))

    def test_requested_set_never_self_evicts(self):
        mgr = self.make(n=4, slots=2)
        mgr.ensure_resident(["a2", "a3"], now=1.0)
        assert mgr.is_resident("a2") and mgr.is_resident("a3")
