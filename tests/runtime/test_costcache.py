"""Cost-memoization layer: unit behavior + bit-identical end-to-end runs.

The cache's contract (see ``repro/runtime/costcache.py``) is that it may
only change wall-clock time, never simulated results.  The property
tests here run the same workload through the memoized and reference cost
paths and require the final clock, every per-request timestamp, and the
whole metrics summary to match to full float precision — across
systems, seeds, and fault schedules.
"""

from __future__ import annotations

import pytest

from repro.core.builder import SystemBuilder
from repro.models.config import QWEN_VL_7B
from repro.models.costs import IterationCostModel
from repro.hardware.gpu import A100_80GB
from repro.runtime.costcache import BatchSignature, IterationCostCache
from repro.runtime.faults import FaultInjector
from repro.runtime.modes import InferenceMode
from repro.runtime.request import reset_request_ids
from repro.workloads.retrieval import RetrievalWorkload


def _signature(**overrides) -> BatchSignature:
    base = dict(
        mode=InferenceMode.UNMERGED,
        merged_adapter=None,
        prefill_launches=(((64, 32), 1),),
        num_decodes=3,
        decode_context_total=300,
        lm_head=True,
        task_head_classes=0,
        adapter_groups=(("lora-0", 5),),
        adapter_ranks=(("lora-0", 64),),
    )
    base.update(overrides)
    return BatchSignature(**base)


class TestIterationCostCache:
    def _cache(self, **kwargs) -> IterationCostCache:
        engine = SystemBuilder(num_adapters=2).build("v-lora")
        return IterationCostCache(engine.iter_costs, engine.mode_exec,
                                  **kwargs)

    def test_hit_and_miss_counters(self):
        cache = self._cache()
        sig = _signature()
        first = cache.lookup(sig)
        second = cache.lookup(sig)
        assert first == second
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.metrics.cost_cache_hits == 1
        assert cache.metrics.cost_cache_misses == 1
        assert cache.hit_rate() == 0.5

    def test_distinct_signatures_miss(self):
        cache = self._cache()
        cache.lookup(_signature())
        cache.lookup(_signature(decode_context_total=301))
        assert (cache.hits, cache.misses) == (0, 2)

    def test_base_matches_direct_cost_model(self):
        cache = self._cache()
        sig = _signature()
        base, extra_mean = cache.lookup(sig)
        expected = 0.0
        for tokens, images in sig.prefill_launches:
            expected += cache.iter_costs.prefill_seconds(tokens, images)
        expected += cache.iter_costs.decode_seconds_stats(
            sig.num_decodes, sig.decode_context_total
        )
        assert base == expected
        assert extra_mean == cache.mode_exec.mean_extra_seconds(
            sig.mode, dict(sig.adapter_groups), dict(sig.adapter_ranks),
            merged_adapter=sig.merged_adapter,
        )

    def test_eviction_clears_but_stays_correct(self):
        cache = self._cache(max_entries=2)
        sigs = [_signature(decode_context_total=300 + i) for i in range(4)]
        values = [cache.lookup(s) for s in sigs]
        assert [cache.lookup(s) for s in sigs] == values

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            self._cache(max_entries=0)


class TestDecodeStats:
    def test_matches_per_request_decode(self):
        costs = IterationCostModel(QWEN_VL_7B, A100_80GB)
        for lens in ((17,), (64, 64, 64), (1, 2, 3, 4, 5),
                     (1000, 13, 512, 2048)):
            for lm_head, classes in ((True, 0), (False, 101), (True, 365)):
                assert costs.decode_seconds_stats(
                    len(lens), sum(lens), lm_head=lm_head,
                    task_head_classes=classes,
                ) == costs.decode_seconds(
                    lens, lm_head=lm_head, task_head_classes=classes,
                )

    def test_uniform_cache_is_per_instance(self):
        a = IterationCostModel(QWEN_VL_7B, A100_80GB)
        b = IterationCostModel(QWEN_VL_7B, A100_80GB, tp_degree=2)
        a.decode_seconds_uniform(4, 128)
        # A class-level ``@lru_cache`` would share (and cross-pollute)
        # one table keyed without tp_degree; per-instance wrappers stay
        # independent.
        assert a.decode_seconds_uniform.cache_info().currsize == 1
        assert b.decode_seconds_uniform.cache_info().currsize == 0
        assert (a.decode_seconds_uniform(4, 128)
                != b.decode_seconds_uniform(4, 128))


def _run_once(system: str, seed: int, enable_cost_cache: bool,
              with_faults: bool):
    injector = None
    if with_faults:
        injector = FaultInjector.random(
            horizon_s=120.0, seed=seed,
            adapter_ids=[f"lora-{i}" for i in range(8)],
            swap_fail_rate=0.05, swap_slow_rate=0.05,
            kv_pressure_rate=0.02, engine_slow_rate=0.02,
        )
    builder = SystemBuilder(num_adapters=8, gpu_adapter_slots=4,
                            jitter_seed=seed,
                            fault_injector=injector,
                            enable_cost_cache=enable_cost_cache)
    reset_request_ids()
    requests = RetrievalWorkload(
        builder.adapter_ids, rate_rps=12.0, duration_s=25.0,
        use_task_heads=(system == "v-lora"), seed=seed,
    ).generate()
    engine = builder.build(system)
    engine.submit(requests)
    metrics = engine.run()
    summary = metrics.summary()
    summary.pop("cost_cache_hits", None)
    summary.pop("cost_cache_misses", None)
    records = sorted(
        (r.request_id, r.arrival_time, r.first_token_time, r.finish_time)
        for r in metrics.records
    )
    return engine.clock.now, records, summary


class TestCacheEquivalence:
    """Memoized runs are bit-identical to the reference cost path."""

    @pytest.mark.parametrize("system", ["v-lora", "s-lora", "punica",
                                        "dlora"])
    def test_systems(self, system):
        assert (_run_once(system, seed=3, enable_cost_cache=True,
                          with_faults=False)
                == _run_once(system, seed=3, enable_cost_cache=False,
                             with_faults=False))

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_seeds(self, seed):
        assert (_run_once("v-lora", seed=seed, enable_cost_cache=True,
                          with_faults=False)
                == _run_once("v-lora", seed=seed, enable_cost_cache=False,
                             with_faults=False))

    @pytest.mark.parametrize("system", ["v-lora", "dlora"])
    def test_fault_schedules(self, system):
        cached = _run_once(system, seed=5, enable_cost_cache=True,
                           with_faults=True)
        assert cached == _run_once(system, seed=5, enable_cost_cache=False,
                                   with_faults=True)

    def test_cache_actually_engages(self):
        builder = SystemBuilder(num_adapters=4)
        reset_request_ids()
        requests = RetrievalWorkload(
            builder.adapter_ids, rate_rps=10.0, duration_s=20.0,
            use_task_heads=True, seed=1,
        ).generate()
        engine = builder.build("v-lora")
        engine.submit(requests)
        metrics = engine.run()
        assert metrics.cost_cache_misses > 0
        assert (metrics.cost_cache_hits + metrics.cost_cache_misses
                == metrics.iterations)
