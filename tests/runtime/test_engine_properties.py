"""Property-based tests over the serving engine.

For arbitrary (bounded) request mixes, the engine must conserve
requests, keep time monotone, and return every KV block — including
under forced KV pressure with preemptions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SystemBuilder
from repro.runtime import Request
from repro.runtime.kv_cache import PagedKVCache

pytestmark = pytest.mark.property


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 16))
    reqs = []
    for i in range(n):
        reqs.append(Request(
            adapter_id=f"lora-{draw(st.integers(0, 2))}",
            arrival_time=draw(st.floats(0.0, 3.0)),
            input_tokens=draw(st.integers(1, 512)),
            output_tokens=draw(st.integers(1, 24)),
            use_task_head=False,
            prefix_key=draw(st.sampled_from([None, "img-a", "img-b"])),
            prefix_tokens=0,
        ))
    system = draw(st.sampled_from(["v-lora", "s-lora", "dlora"]))
    return reqs, system


@settings(max_examples=25, deadline=None)
@given(data=workloads())
def test_engine_conserves_requests_and_blocks(data):
    reqs, system = data
    builder = SystemBuilder(num_adapters=3, max_batch_size=8)
    engine = builder.build(system)
    engine.submit(reqs)
    metrics = engine.run()

    # Conservation: everything completes exactly once.
    assert metrics.num_completed == len(reqs)
    ids = [r.request_id for r in metrics.records]
    assert len(set(ids)) == len(ids)

    # Time sanity.
    for rec in metrics.records:
        assert rec.arrival_time <= rec.first_token_time <= rec.finish_time

    # All KV returns once cached prefixes are dropped.
    engine.kv.evict_stale_prefixes(float("inf"))
    engine.kv.check_invariants()
    assert engine.kv.free_blocks == engine.kv.num_blocks


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(4, 12),
    input_tokens=st.integers(200, 400),
    output_tokens=st.integers(32, 96),
)
def test_engine_survives_kv_pressure(n, input_tokens, output_tokens):
    """With a cache far too small for the workload, the engine preempts
    and recomputes but still finishes everything, and no block leaks."""
    builder = SystemBuilder(num_adapters=2, max_batch_size=8)
    engine = builder.build("v-lora")
    # Just enough blocks for ~2 requests at a time.
    engine.kv = PagedKVCache(
        num_blocks=2 * ((input_tokens + output_tokens) // 16 + 2),
        block_size=16,
    )
    reqs = [
        Request(adapter_id=f"lora-{i % 2}", arrival_time=0.01 * i,
                input_tokens=input_tokens, output_tokens=output_tokens)
        for i in range(n)
    ]
    engine.submit(reqs)
    metrics = engine.run()
    assert metrics.num_completed == n
    engine.kv.evict_stale_prefixes(float("inf"))
    engine.kv.check_invariants()
    assert engine.kv.free_blocks == engine.kv.num_blocks
