"""Tests for Algorithm 1 and the baseline scheduling policies."""

import pytest

from repro.runtime import (
    DLoRAPolicy,
    InferenceMode,
    MergedOnlyPolicy,
    Request,
    UnmergedOnlyPolicy,
    VLoRAPolicy,
)
from repro.runtime.scheduler import SchedulerDecision, SchedulingContext

M = InferenceMode


def make_requests(adapters, arrival=0.0):
    return [
        Request(adapter_id=a, arrival_time=arrival, input_tokens=64,
                output_tokens=8)
        for a in adapters
    ]


def ctx(now=0.0, mode=M.UNMERGED, merged=None, max_bs=8,
        iter_s=0.02, switch_s=0.005):
    return SchedulingContext(
        now=now, current_mode=mode, current_merged=merged,
        max_batch_size=max_bs, est_iteration_seconds=iter_s,
        est_switch_seconds=switch_s,
    )


class TestDecisionValidation:
    def test_needs_batch(self):
        with pytest.raises(ValueError):
            SchedulerDecision(batch=[], mode=M.UNMERGED)

    def test_merged_needs_adapter(self):
        reqs = make_requests(["a"])
        with pytest.raises(ValueError):
            SchedulerDecision(batch=reqs, mode=M.MERGED)

    def test_merged_rejects_foreign(self):
        reqs = make_requests(["a", "b"])
        with pytest.raises(ValueError, match="foreign"):
            SchedulerDecision(batch=reqs, mode=M.MERGED, merged_adapter="a")


class TestVLoRAPolicy:
    def test_empty_returns_none(self):
        assert VLoRAPolicy().schedule([], ctx()) is None

    def test_merge_when_majority_and_no_starvation(self):
        """Alg. 1 lines 6-8."""
        reqs = make_requests(["a"] * 6 + ["b"] * 2)
        decision = VLoRAPolicy(theta=10.0).schedule(reqs, ctx())
        assert decision.mode is M.MERGED
        assert decision.merged_adapter == "a"
        assert all(r.adapter_id == "a" for r in decision.batch)

    def test_mixture_when_minority_starves(self):
        """Alg. 1 lines 9-12: starving minority rides the deLoRA branch."""
        reqs = make_requests(["a"] * 6)
        starving = make_requests(["b"], arrival=0.0)
        now = 5.0
        for r in reqs:
            r.arrival_time = now  # fresh
        decision = VLoRAPolicy(theta=1.0).schedule(reqs + starving,
                                                   ctx(now=now))
        assert decision.mode is M.MIXTURE
        assert decision.merged_adapter == "a"
        assert starving[0] in decision.batch

    def test_unmerge_when_starvation_widespread(self):
        """Alg. 1 lines 13-15."""
        reqs = make_requests(["a", "b", "c", "d", "e", "f"], arrival=0.0)
        decision = VLoRAPolicy(theta=1.0).schedule(reqs, ctx(now=10.0))
        assert decision.mode is M.UNMERGED

    def test_unmerge_when_no_majority(self):
        reqs = make_requests(["a", "b", "c", "d"])
        decision = VLoRAPolicy(theta=10.0).schedule(reqs, ctx())
        assert decision.mode is M.UNMERGED

    def test_starving_requests_scheduled_first(self):
        old = make_requests(["b"], arrival=0.0)
        fresh = make_requests(["a"] * 10, arrival=9.9)
        decision = VLoRAPolicy(theta=1.0).schedule(
            fresh + old, ctx(now=10.0, max_bs=4)
        )
        assert old[0] in decision.batch

    def test_credit_includes_exec_and_switch(self):
        reqs = make_requests(["a"], arrival=0.0)
        VLoRAPolicy(theta=99.0).schedule(
            reqs, ctx(now=1.0, iter_s=0.5, switch_s=0.25)
        )
        assert reqs[0].credit == pytest.approx(1.0 + 0.5 + 0.25)

    def test_batch_respects_max_bs(self):
        reqs = make_requests(["a"] * 20)
        decision = VLoRAPolicy(theta=10.0).schedule(reqs, ctx(max_bs=8))
        assert len(decision.batch) == 8

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            VLoRAPolicy(theta=0.0)


class TestUnmergedOnly:
    def test_fcfs_order(self):
        late = make_requests(["a"], arrival=5.0)
        early = make_requests(["b"], arrival=1.0)
        decision = UnmergedOnlyPolicy().schedule(late + early, ctx(now=6.0))
        assert decision.mode is M.UNMERGED
        assert decision.batch[0] is early[0]

    def test_empty(self):
        assert UnmergedOnlyPolicy().schedule([], ctx()) is None


class TestMergedOnly:
    def test_sticks_with_current_adapter(self):
        reqs = make_requests(["a", "b", "b"])
        decision = MergedOnlyPolicy().schedule(reqs, ctx(merged="a"))
        assert decision.merged_adapter == "a"

    def test_moves_to_oldest_waiting_adapter(self):
        a = make_requests(["a"], arrival=3.0)
        b = make_requests(["b"], arrival=1.0)
        decision = MergedOnlyPolicy().schedule(a + b, ctx(merged="zz", now=5.0))
        assert decision.merged_adapter == "b"
        assert decision.mode is M.MERGED


class TestDLoRAPolicy:
    def test_merges_dominant_adapter(self):
        reqs = make_requests(["a"] * 7 + ["b"], arrival=0.0)
        decision = DLoRAPolicy().schedule(reqs, ctx(now=0.1))
        assert decision.mode is M.MERGED
        assert decision.merged_adapter == "a"

    def test_unmerges_when_balanced(self):
        reqs = make_requests(["a", "b", "a", "b"])
        decision = DLoRAPolicy().schedule(reqs, ctx())
        assert decision.mode is M.UNMERGED

    def test_starvation_forces_unmerge(self):
        reqs = make_requests(["a"] * 7, arrival=10.0)
        starved = make_requests(["b"], arrival=0.0)
        decision = DLoRAPolicy(starvation_s=1.0).schedule(
            reqs + starved, ctx(now=10.0)
        )
        assert decision.mode is M.UNMERGED

    def test_share_validation(self):
        with pytest.raises(ValueError):
            DLoRAPolicy(merge_share=1.0)
