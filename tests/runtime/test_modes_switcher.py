"""Tests for inference modes (deLoRA math/cost) and the mode switchers."""

import numpy as np
import pytest

from repro.hardware import A100_80GB
from repro.kernels import ATMMOperator, GemmCostModel
from repro.models import QWEN_VL_7B, LoRAAdapterSpec
from repro.runtime import (
    DLoRASwitcher,
    InferenceMode,
    ModeExecutor,
    SwiftSwitcher,
)

M = InferenceMode


@pytest.fixture(scope="module")
def executor(atmm):
    return ModeExecutor(QWEN_VL_7B, atmm, num_projections=2)


RANKS = {"a": 64, "b": 64, "c": 64}


class TestModeExecutor:
    def test_merged_is_free(self, executor):
        t = executor.extra_seconds(M.MERGED, {"a": 500}, RANKS,
                                   merged_adapter="a")
        assert t == 0.0

    def test_merged_rejects_foreign_adapters(self, executor):
        with pytest.raises(ValueError, match="cannot serve"):
            executor.extra_seconds(M.MERGED, {"a": 10, "b": 10}, RANKS,
                                   merged_adapter="a")

    def test_unmerged_costs_grow_with_tokens(self, executor):
        small = executor.extra_seconds(M.UNMERGED, {"a": 10}, RANKS)
        large = executor.extra_seconds(M.UNMERGED, {"a": 4000}, RANKS)
        assert 0 < small < large

    def test_mixture_needs_merged_adapter(self, executor):
        with pytest.raises(ValueError):
            executor.extra_seconds(M.MIXTURE, {"a": 10}, RANKS)

    def test_mixture_degenerates_to_merged(self, executor):
        t = executor.extra_seconds(M.MIXTURE, {"a": 100}, RANKS,
                                   merged_adapter="a")
        assert t == 0.0

    def test_mixture_cheaper_than_unmerged_when_minority(self, executor):
        """Fig. 20: deLoRA saves compute while starved requests are few."""
        tokens = {"a": 900, "b": 100}  # a merged, b the starved minority
        mixture = executor.extra_seconds(M.MIXTURE, tokens, RANKS,
                                         merged_adapter="a")
        unmerged = executor.extra_seconds(M.UNMERGED, tokens, RANKS)
        assert mixture < unmerged

    def test_mixture_more_expensive_when_majority_foreign(self, executor):
        tokens = {"a": 100, "b": 900}
        mixture = executor.extra_seconds(M.MIXTURE, tokens, RANKS,
                                         merged_adapter="a")
        unmerged = executor.extra_seconds(M.UNMERGED, tokens, RANKS)
        assert mixture > unmerged

    def test_missing_rank_rejected(self, executor):
        with pytest.raises(ValueError, match="missing ranks"):
            executor.extra_seconds(M.UNMERGED, {"zz": 10}, RANKS)

    def test_jitter_reproducible(self, executor):
        t1 = executor.extra_seconds(M.UNMERGED, {"a": 100}, RANKS,
                                    rng=np.random.default_rng(5))
        t2 = executor.extra_seconds(M.UNMERGED, {"a": 100}, RANKS,
                                    rng=np.random.default_rng(5))
        assert t1 == t2


@pytest.fixture(scope="module")
def swift(atmm):
    return SwiftSwitcher(QWEN_VL_7B, atmm, num_projections=2)


@pytest.fixture(scope="module")
def dlora_switch(cost_model):
    return DLoRASwitcher(QWEN_VL_7B, cost_model, num_projections=2)


SPEC_A = LoRAAdapterSpec("a", QWEN_VL_7B)
SPEC_B = LoRAAdapterSpec("b", QWEN_VL_7B)


class TestSwitchers:
    def test_swift_merge_under_10ms(self, swift):
        """§4.4.1: 'our mode switch costs only <10ms'."""
        assert swift.merge_seconds(SPEC_A) < 0.010

    def test_dlora_merge_near_53ms(self, dlora_switch):
        """Fig. 7: dLoRA's switch costs ~53 ms."""
        assert 0.035 < dlora_switch.merge_seconds(SPEC_A) < 0.070

    def test_swift_speedup_over_5x(self, swift, dlora_switch):
        """§4.4.1: 'speeds up dLoRA >5x'."""
        ratio = dlora_switch.merge_seconds(SPEC_A) / swift.merge_seconds(SPEC_A)
        assert ratio > 5.0

    def test_no_cost_when_state_unchanged(self, swift):
        assert swift.switch_seconds(M.MERGED, M.MERGED, SPEC_A, SPEC_A) == 0.0
        assert swift.switch_seconds(M.UNMERGED, M.UNMERGED, None, None) == 0.0

    def test_unmerged_to_merged_is_one_merge(self, swift):
        t = swift.switch_seconds(M.UNMERGED, M.MERGED, None, SPEC_A)
        assert t == pytest.approx(swift.merge_seconds(SPEC_A))

    def test_merged_to_unmerged_is_one_unmerge(self, swift):
        t = swift.switch_seconds(M.MERGED, M.UNMERGED, SPEC_A, None)
        assert t == pytest.approx(swift.unmerge_seconds(SPEC_A))

    def test_adapter_change_pays_both(self, swift):
        t = swift.switch_seconds(M.MERGED, M.MERGED, SPEC_A, SPEC_B)
        assert t == pytest.approx(
            swift.unmerge_seconds(SPEC_A) + swift.merge_seconds(SPEC_B)
        )

    def test_merged_to_mixture_same_adapter_free(self, swift):
        """Mixture keeps the adapter merged: no switch cost (§4.4.2)."""
        assert swift.switch_seconds(M.MERGED, M.MIXTURE, SPEC_A, SPEC_A) == 0.0

    def test_mixture_to_unmerged_pays_unmerge(self, swift):
        t = swift.switch_seconds(M.MIXTURE, M.UNMERGED, SPEC_A, None)
        assert t == pytest.approx(swift.unmerge_seconds(SPEC_A))
