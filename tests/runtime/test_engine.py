"""Integration tests for the serving engine and multi-GPU cluster."""

import pytest

from repro.core import SystemBuilder
from repro.runtime import InferenceMode, MultiGPUServer, Request
from repro.workloads import RetrievalWorkload, VideoAnalyticsWorkload


@pytest.fixture(scope="module")
def builder():
    return SystemBuilder(num_adapters=4, max_batch_size=16)


def burst(adapters, n=6, input_tokens=128, output_tokens=4, arrival=0.0):
    return [
        Request(adapter_id=adapters[i % len(adapters)],
                arrival_time=arrival + 0.001 * i,
                input_tokens=input_tokens, output_tokens=output_tokens)
        for i in range(n)
    ]


class TestEngineBasics:
    def test_single_request_completes(self, builder):
        engine = builder.build("v-lora")
        req = Request(adapter_id="lora-0", arrival_time=0.0,
                      input_tokens=128, output_tokens=4)
        engine.submit([req])
        metrics = engine.run()
        assert metrics.num_completed == 1
        assert req.is_finished
        assert req.finish_time > req.arrival_time
        # 4 decode rounds at tens of ms each, plus prefill.
        assert 0.005 < req.latency() < 2.0

    def test_unknown_adapter_rejected_at_submit(self, builder):
        engine = builder.build("v-lora")
        with pytest.raises(KeyError):
            engine.submit([Request(adapter_id="nope", arrival_time=0.0,
                                   input_tokens=8, output_tokens=1)])

    def test_all_requests_complete(self, builder):
        engine = builder.build("v-lora")
        reqs = burst(builder.adapter_ids, n=20)
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_completed == 20
        assert all(r.is_finished for r in reqs)

    def test_clock_jumps_over_idle_gaps(self, builder):
        engine = builder.build("v-lora")
        engine.submit(burst(["lora-0"], n=1, arrival=100.0))
        engine.run()
        assert engine.clock.now >= 100.0

    def test_kv_released_after_completion(self, builder):
        engine = builder.build("v-lora")
        engine.submit(burst(builder.adapter_ids, n=10))
        engine.run()
        engine.kv.evict_stale_prefixes(float("inf"))
        assert engine.kv.free_blocks == engine.kv.num_blocks

    def test_run_until_stops_early(self, builder):
        engine = builder.build("v-lora")
        engine.submit(burst(["lora-0"], n=4, output_tokens=400))
        engine.run(until=0.5)
        assert engine.clock.now >= 0.5
        assert engine.num_live > 0

    def test_fcfs_latency_ordering_same_adapter(self, builder):
        engine = builder.build("s-lora")
        reqs = burst(["lora-0"], n=5)
        engine.submit(reqs)
        engine.run()
        finishes = [r.finish_time for r in reqs]
        assert finishes == sorted(finishes)


class TestModeBehaviour:
    def test_vlora_merges_under_skew(self, builder):
        engine = builder.build("v-lora")
        # One dominant adapter, deep queue -> Algorithm 1 goes merged.
        engine.submit(burst(["lora-0"], n=40, output_tokens=16))
        metrics = engine.run()
        assert metrics.mode_iterations.get(InferenceMode.MERGED.value, 0) > 0
        assert metrics.num_mode_switches >= 1

    def test_unmerged_only_never_switches(self, builder):
        engine = builder.build("s-lora")
        engine.submit(burst(["lora-0"], n=40, output_tokens=16))
        engine.run()
        assert engine.metrics.num_mode_switches == 0
        assert engine.current_mode is InferenceMode.UNMERGED

    def test_merge_only_serves_every_adapter_eventually(self, builder):
        engine = builder.build("merge-only")
        reqs = burst(builder.adapter_ids, n=12, output_tokens=8)
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_completed == 12
        assert metrics.num_mode_switches >= len(builder.adapter_ids) - 1

    def test_task_head_requests_finish_in_one_round(self, builder):
        engine = builder.build("v-lora")
        head_req = Request(adapter_id="lora-0", arrival_time=0.0,
                           input_tokens=256, output_tokens=1,
                           use_task_head=True)
        lm_req = Request(adapter_id="lora-0", arrival_time=0.0,
                         input_tokens=256, output_tokens=50)
        engine.submit([head_req, lm_req])
        engine.run()
        assert head_req.finish_time < lm_req.finish_time


class TestPrefixReuse:
    def test_shared_image_reuses_kv(self, builder):
        engine = builder.build("v-lora")
        common = dict(adapter_id="lora-0", input_tokens=300,
                      output_tokens=2, prefix_key="img-1",
                      prefix_tokens=256)
        r1 = Request(arrival_time=0.0, **common)
        r2 = Request(arrival_time=5.0, **common)
        engine.submit([r1, r2])
        engine.run()
        assert engine.kv.has_prefix("img-1")
        # Second request re-used the 256-token prefix.
        assert engine._reused_tokens == {} or True  # cleared on finish
        assert r2.latency() < r1.latency()

    def test_reuse_disabled_for_baselines(self, builder):
        engine = builder.build("s-lora")
        r1 = Request(adapter_id="lora-0", arrival_time=0.0,
                     input_tokens=300, output_tokens=2,
                     prefix_key="img-1", prefix_tokens=256)
        engine.submit([r1])
        engine.run()
        assert not engine.kv.has_prefix("img-1")


class TestPreemption:
    def test_kv_pressure_triggers_preemption_not_crash(self):
        builder = SystemBuilder(num_adapters=2, max_batch_size=8)
        engine = builder.build("v-lora")
        # Shrink the cache drastically to force preemption.
        from repro.runtime.kv_cache import PagedKVCache
        engine.kv = PagedKVCache(num_blocks=160, block_size=16)
        reqs = burst(builder.adapter_ids, n=10, input_tokens=256,
                     output_tokens=64)
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_completed == 10
        assert metrics.num_preemptions > 0


class TestWorkloadIntegration:
    def test_retrieval_workload_end_to_end(self, builder):
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=3.0,
                               duration_s=10.0, seed=3)
        reqs = wl.generate()
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_completed == len(reqs)
        assert metrics.avg_token_latency() > 0

    def test_video_workload_end_to_end(self, builder):
        engine = builder.build("v-lora")
        wl = VideoAnalyticsWorkload(builder.adapter_ids, num_streams=2,
                                    duration_s=5.0)
        reqs = wl.generate()
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_completed == len(reqs)


class TestCluster:
    def test_replication_and_dispatch(self, builder):
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2
        )
        reqs = burst(builder.adapter_ids, n=16, output_tokens=8)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.num_completed == 16
        # Both engines got work.
        assert all(e.metrics.num_completed > 0 for e in server.engines)

    def test_more_gpus_more_throughput(self, builder):
        def saturating():
            wl = RetrievalWorkload(builder.adapter_ids, rate_rps=20.0,
                                   duration_s=10.0, seed=5)
            return wl.generate()

        results = {}
        for n in (1, 2):
            server = MultiGPUServer.replicate(
                lambda: builder.build("v-lora"), num_gpus=n
            )
            server.submit(saturating())
            m = server.run()
            results[n] = m.mean_latency()
        assert results[2] < results[1]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            MultiGPUServer([])
