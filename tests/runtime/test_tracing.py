"""Tests for per-iteration engine tracing."""

import pytest

from repro.core import SystemBuilder
from repro.runtime import Request
from repro.runtime.tracing import EngineTracer, IterationEvent
from repro.workloads import RetrievalWorkload


def event(index=0, start=0.0, duration=0.01, mode="unmerged",
          switch=0.0, **kw):
    defaults = dict(
        index=index, start=start, duration=duration, mode=mode,
        merged_adapter=None, batch_size=1, prefill_tokens=10,
        decode_tokens=5, adapters=("a",), switch_seconds=switch,
        swap_stall_seconds=0.0, preemptions=0,
    )
    defaults.update(kw)
    return IterationEvent(**defaults)


class TestTracerUnit:
    def test_time_by_mode_accumulates(self):
        t = EngineTracer()
        t.record(event(mode="merged", duration=0.2))
        t.record(event(mode="merged", duration=0.3))
        t.record(event(mode="unmerged", duration=0.1))
        assert t.time_by_mode() == pytest.approx(
            {"merged": 0.5, "unmerged": 0.1}
        )

    def test_switch_accounting(self):
        t = EngineTracer()
        t.record(event(switch=0.05))
        t.record(event(switch=0.0))
        assert len(t.switch_events()) == 1
        assert t.total_switch_time() == pytest.approx(0.05)

    def test_mode_segments_merge_contiguous(self):
        t = EngineTracer()
        t.record(event(start=0.0, duration=0.1, mode="merged"))
        t.record(event(start=0.1, duration=0.1, mode="merged"))
        t.record(event(start=0.2, duration=0.1, mode="unmerged"))
        segments = t.mode_segments()
        assert len(segments) == 2
        assert segments[0] == ("merged", 0.0, pytest.approx(0.2))

    def test_bounded_events(self):
        t = EngineTracer(max_events=2)
        for i in range(5):
            t.record(event(index=i))
        assert len(t.events) == 2
        assert t.num_dropped == 3

    def test_render_requires_events(self):
        with pytest.raises(ValueError):
            EngineTracer().render_timeline()

    def test_event_derived_fields(self):
        e = event(start=1.0, duration=0.5, prefill_tokens=3, decode_tokens=4)
        assert e.end == pytest.approx(1.5)
        assert e.total_tokens == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineTracer(max_events=0)


class TestTracerIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self):
        builder = SystemBuilder(num_adapters=4, max_batch_size=16)
        engine = builder.build("v-lora")
        tracer = engine.attach_tracer()
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=8.0,
                               duration_s=10.0, top_adapter_share=0.7,
                               seed=3)
        engine.submit(wl.generate())
        metrics = engine.run()
        return engine, tracer, metrics

    def test_one_event_per_iteration(self, traced_run):
        _, tracer, metrics = traced_run
        assert len(tracer.events) == metrics.iterations

    def test_mode_time_matches_metrics_counts(self, traced_run):
        _, tracer, metrics = traced_run
        by_mode = {}
        for e in tracer.events:
            by_mode[e.mode] = by_mode.get(e.mode, 0) + 1
        assert by_mode == metrics.mode_iterations

    def test_switch_time_matches_metrics(self, traced_run):
        _, tracer, metrics = traced_run
        assert tracer.total_switch_time() == pytest.approx(
            metrics.switch_time_total
        )

    def test_timeline_renders(self, traced_run):
        _, tracer, _ = traced_run
        out = tracer.render_timeline(width=40)
        assert "U" in out or "M" in out or "X" in out

    def test_events_monotone_in_time(self, traced_run):
        _, tracer, _ = traced_run
        starts = [e.start for e in tracer.events]
        assert starts == sorted(starts)

    def test_untraced_engine_records_nothing(self):
        builder = SystemBuilder(num_adapters=2)
        engine = builder.build("v-lora")
        engine.submit([Request(adapter_id="lora-0", arrival_time=0.0,
                               input_tokens=32, output_tokens=2)])
        engine.run()
        assert engine.tracer is None
