"""φ-accrual failure detection and lease-fenced exactly-once dispatch."""

import math

import pytest

from repro.core import SystemBuilder
from repro.runtime import (
    FailureDetector,
    FailureDetectorConfig,
    FaultInjector,
    FaultKind,
    FaultSpec,
    MultiGPUServer,
    PhiAccrualDetector,
    Request,
    RequestStatus,
    SuspicionState,
)

HB = 0.25  # default heartbeat cadence used throughout


def burst(adapters, n=6, input_tokens=128, output_tokens=4, arrival=0.0,
          **kwargs):
    return [
        Request(adapter_id=adapters[i % len(adapters)],
                arrival_time=arrival + 0.001 * i,
                input_tokens=input_tokens, output_tokens=output_tokens,
                **kwargs)
        for i in range(n)
    ]


def assert_exactly_once(requests, metrics):
    """Every request reached exactly one terminal state, none twice."""
    assert all(r.is_terminal for r in requests)
    rec_ids = [r.request_id for r in metrics.records]
    abort_ids = [r.request_id for r in metrics.aborts]
    assert len(rec_ids) == len(set(rec_ids))
    assert len(abort_ids) == len(set(abort_ids))
    assert not set(rec_ids) & set(abort_ids)
    assert set(rec_ids) | set(abort_ids) == {r.request_id for r in requests}


class TestFailureDetectorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureDetectorConfig(heartbeat_interval_s=0.0)
        with pytest.raises(ValueError):
            FailureDetectorConfig(phi_suspect=-1.0)
        with pytest.raises(ValueError):
            FailureDetectorConfig(phi_suspect=4.0, phi_confirm=4.0)
        with pytest.raises(ValueError):
            FailureDetectorConfig(window=0)
        with pytest.raises(ValueError):
            FailureDetectorConfig(interval_s=0.0)


class TestPhiAccrual:
    def test_phi_grows_with_silence(self):
        det = PhiAccrualDetector(FailureDetectorConfig(), registered_at=0.0)
        det.heartbeat(HB)
        assert det.phi(HB) == 0.0
        assert det.phi(HB + 0.5) > 0.0
        assert det.phi(HB + 2.0) > det.phi(HB + 0.5)

    def test_phi_is_silence_in_decades_of_mean_gap(self):
        det = PhiAccrualDetector(FailureDetectorConfig(), registered_at=0.0)
        # Warm-up mean is the configured cadence; one decade of it -> φ=1.
        assert det.phi(HB * math.log(10.0)) == pytest.approx(1.0)

    def test_mean_warms_up_from_configured_cadence(self):
        cfg = FailureDetectorConfig(min_samples=3)
        det = PhiAccrualDetector(cfg, registered_at=0.0)
        det.heartbeat(1.0)
        det.heartbeat(2.0)
        assert det.mean_interval() == cfg.heartbeat_interval_s
        det.heartbeat(3.0)  # third sample: switch to the observed mean
        assert det.mean_interval() == pytest.approx(1.0)

    def test_stale_heartbeats_ignored(self):
        det = PhiAccrualDetector(FailureDetectorConfig(), registered_at=0.0)
        det.heartbeat(1.0)
        det.heartbeat(0.5)   # late duplicate from before the last beat
        det.heartbeat(1.0)   # exact duplicate
        assert det.last_heartbeat == 1.0
        assert len(det._intervals) == 1

    def test_late_in_order_delivery_reconstructs_history(self):
        # Withheld-then-healed heartbeats arrive with their original
        # timestamps; delivering them in order must not leave one giant
        # interval in the window.
        det = PhiAccrualDetector(FailureDetectorConfig(min_samples=1),
                                 registered_at=0.0)
        for t in (HB, 2 * HB, 3 * HB, 4 * HB):
            det.heartbeat(t)
        assert det.mean_interval() == pytest.approx(HB)


class TestFailureDetector:
    def _det(self, suspect=2.0, confirm=8.0):
        det = FailureDetector(FailureDetectorConfig(
            phi_suspect=suspect, phi_confirm=confirm))
        det.register("gpu-0", 0.0)
        return det

    def test_register_duplicate_raises(self):
        det = self._det()
        with pytest.raises(ValueError):
            det.register("gpu-0", 1.0)

    def test_unknown_replica_defaults_alive(self):
        det = self._det()
        assert det.state_of("nope") is SuspicionState.ALIVE
        det.heartbeat("nope", 1.0)  # ignored, no crash

    def test_suspect_then_confirm(self):
        det = self._det()
        suspect_at = 2.0 * HB * math.log(10.0)
        confirm_at = 8.0 * HB * math.log(10.0)
        assert det.evaluate(suspect_at / 2) == []
        trans = det.evaluate(suspect_at + 1e-9)
        assert trans == [("gpu-0", SuspicionState.ALIVE,
                          SuspicionState.SUSPECTED)]
        trans = det.evaluate(confirm_at + 1e-9)
        assert trans == [("gpu-0", SuspicionState.SUSPECTED,
                          SuspicionState.CONFIRMED_DEAD)]

    def test_false_suspicion_heals(self):
        det = self._det()
        det.evaluate(2.0)  # silence -> SUSPECTED
        assert det.state_of("gpu-0") is SuspicionState.SUSPECTED
        det.heartbeat("gpu-0", 2.1)
        trans = det.evaluate(2.2)
        assert trans == [("gpu-0", SuspicionState.SUSPECTED,
                          SuspicionState.ALIVE)]

    def test_confirmed_dead_is_sticky(self):
        det = self._det()
        det.evaluate(100.0)
        assert det.state_of("gpu-0") is SuspicionState.CONFIRMED_DEAD
        det.heartbeat("gpu-0", 100.1)  # zombie beat: ignored
        assert det.evaluate(100.2) == []
        assert det.state_of("gpu-0") is SuspicionState.CONFIRMED_DEAD

    def test_evaluate_is_sorted_and_deterministic(self):
        det = FailureDetector(FailureDetectorConfig())
        for rid in ("gpu-2", "gpu-0", "gpu-1"):
            det.register(rid, 0.0)
        trans = det.evaluate(100.0)
        assert [t[0] for t in trans] == ["gpu-0", "gpu-1", "gpu-2"]
        assert all(new is SuspicionState.CONFIRMED_DEAD
                   for _, _, new in trans)


class TestClusterDetection:
    """End-to-end: detector replaces the oracle in the cluster loop."""

    def _cluster(self, inj, num_gpus=2, num_hosts=0, suspect=1.0,
                 confirm=3.0, **kwargs):
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        det = FailureDetector(FailureDetectorConfig(
            phi_suspect=suspect, phi_confirm=confirm))
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=num_gpus,
            dispatch="round-robin", detector=det, num_hosts=num_hosts,
            **kwargs)
        return builder, server

    def test_no_faults_no_detector_noise(self):
        builder, server = self._cluster(None)
        reqs = burst(builder.adapter_ids, n=8, output_tokens=32)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.num_completed == 8
        assert metrics.suspicions == 0
        assert metrics.false_suspicions == 0
        assert metrics.fenced_completions == 0
        assert_exactly_once(reqs, metrics)

    def test_engine_fail_detected_and_failed_over(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.3, target="gpu-0"),
        ])
        builder, server = self._cluster(inj)
        reqs = burst(builder.adapter_ids, n=10, output_tokens=64)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.suspicions >= 1
        assert metrics.failover_events > 0
        assert len(metrics.detection_latencies) == 1
        # Confirmation takes phi_confirm decades of the heartbeat gap.
        assert metrics.detection_latencies[0] >= 3.0 * HB * math.log(10.0) / 2
        assert_exactly_once(reqs, metrics)

    def test_heartbeat_loss_is_false_suspicion_not_death(self):
        # Monitoring-path loss only: work is unaffected, so the replica
        # must be suspected (drained) and then healed, never confirmed.
        inj = FaultInjector([
            FaultSpec(FaultKind.HEARTBEAT_LOSS, 0.5, 1.0, target="gpu-0"),
        ])
        builder, server = self._cluster(inj, suspect=1.0, confirm=20.0)
        reqs = burst(builder.adapter_ids, n=10, output_tokens=200)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.suspicions >= 1
        assert metrics.false_suspicions >= 1
        assert metrics.engine_failures == 0
        assert metrics.fenced_completions == 0
        assert metrics.num_completed == 10
        assert_exactly_once(reqs, metrics)

    def test_partition_zombie_completions_are_fenced(self):
        # A long partition: the replica keeps computing, gets confirmed
        # dead, its work is re-dispatched; its own results must arrive
        # as fenced duplicates, never double-terminating a request.
        inj = FaultInjector([
            FaultSpec(FaultKind.NETWORK_PARTITION, 0.5, 60.0,
                      target="gpu-0"),
        ])
        builder, server = self._cluster(inj)
        reqs = burst(builder.adapter_ids, n=10, output_tokens=64)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.suspicions >= 1
        assert metrics.fenced_completions > 0
        assert metrics.failover_events > 0
        assert_exactly_once(reqs, metrics)

    def test_partition_heal_readmits_replica(self):
        # Short partition, generous confirm threshold: the replica is
        # suspected, the partition heals, withheld heartbeats+results
        # are delivered, and the replica returns to ALIVE.
        inj = FaultInjector([
            FaultSpec(FaultKind.NETWORK_PARTITION, 0.5, 1.0,
                      target="gpu-0"),
        ])
        builder, server = self._cluster(inj, suspect=1.0, confirm=30.0)
        reqs = burst(builder.adapter_ids, n=10, output_tokens=200)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.partition_heals == 1
        assert metrics.false_suspicions >= 1
        assert metrics.fenced_completions == 0
        assert metrics.num_completed == 10
        assert_exactly_once(reqs, metrics)

    def test_host_fail_kills_the_whole_domain(self):
        # 3 replicas over 2 hosts: gpu-0,gpu-2 -> host-0; gpu-1 -> host-1.
        inj = FaultInjector([
            FaultSpec(FaultKind.HOST_FAIL, 0.3, target="host-0"),
        ])
        builder, server = self._cluster(inj, num_gpus=3, num_hosts=2)
        hosts = {rep.replica_id: rep.engine.host for rep in server.replicas}
        assert hosts == {"gpu-0": "host-0", "gpu-1": "host-1",
                         "gpu-2": "host-0"}
        reqs = burst(builder.adapter_ids, n=12, output_tokens=64)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.engine_failures == 2
        assert len(metrics.detection_latencies) == 2
        assert server.detector.state_of("gpu-1") is SuspicionState.ALIVE
        assert_exactly_once(reqs, metrics)

    def test_summary_surfaces_detector_counters(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.NETWORK_PARTITION, 0.5, 60.0,
                      target="gpu-0"),
            FaultSpec(FaultKind.ENGINE_FAIL, 0.5, target="gpu-1"),
        ])
        builder, server = self._cluster(inj, num_gpus=3)
        server.submit(burst(builder.adapter_ids, n=10, output_tokens=64))
        summary = server.run().summary()
        assert summary["suspicions"] >= 1
        assert summary["fenced_completions"] >= 1
        assert "detection_latency_p50_s" in summary
        assert "detection_latency_p99_s" in summary

    def test_detector_off_summary_has_no_detector_keys(self):
        builder = SystemBuilder(num_adapters=2)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2)
        server.submit(burst(builder.adapter_ids, n=6))
        summary = server.run().summary()
        for key in ("suspicions", "false_suspicions", "fenced_completions",
                    "partition_heals", "detection_latency_p50_s"):
            assert key not in summary
