"""Property-based tests over the scheduling policies.

For arbitrary live-request sets and contexts, every policy's decision
must satisfy structural invariants: batch bounded by MaxBS, merged-mode
purity, starving requests never left behind when capacity allows, and
batch membership drawn from the candidates.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    DLoRAPolicy,
    InferenceMode,
    MergedOnlyPolicy,
    Request,
    UnmergedOnlyPolicy,
    VLoRAPolicy,
)
from repro.runtime.scheduler import SchedulingContext

pytestmark = pytest.mark.property

ADAPTERS = ["a", "b", "c", "d"]


@st.composite
def request_sets(draw):
    n = draw(st.integers(1, 24))
    now = draw(st.floats(1.0, 50.0))
    reqs = []
    for _ in range(n):
        arrival = draw(st.floats(0.0, now))
        reqs.append(Request(
            adapter_id=draw(st.sampled_from(ADAPTERS)),
            arrival_time=arrival,
            input_tokens=draw(st.integers(1, 512)),
            output_tokens=draw(st.integers(1, 64)),
        ))
    ctx = SchedulingContext(
        now=now,
        current_mode=draw(st.sampled_from(list(InferenceMode))),
        current_merged=draw(st.sampled_from([None, *ADAPTERS])),
        max_batch_size=draw(st.integers(1, 16)),
        est_iteration_seconds=draw(st.floats(0.001, 0.1)),
        est_switch_seconds=draw(st.floats(0.0, 0.05)),
    )
    return reqs, ctx


POLICIES = [
    VLoRAPolicy(theta=0.5),
    UnmergedOnlyPolicy(),
    MergedOnlyPolicy(),
    DLoRAPolicy(),
]


@settings(max_examples=120, deadline=None)
@given(data=request_sets(), policy_idx=st.integers(0, len(POLICIES) - 1))
def test_decision_invariants(data, policy_idx):
    reqs, ctx = data
    policy = POLICIES[policy_idx]
    decision = policy.schedule(reqs, ctx)
    assert decision is not None  # non-empty candidates always yield work
    # Batch bounded and drawn from candidates, no duplicates.
    assert 1 <= len(decision.batch) <= ctx.max_batch_size
    ids = [r.request_id for r in decision.batch]
    assert len(set(ids)) == len(ids)
    candidate_ids = {r.request_id for r in reqs}
    assert set(ids) <= candidate_ids
    # Mode/adapter consistency (also enforced by SchedulerDecision, but
    # assert the semantic bits beyond construction).
    if decision.mode is InferenceMode.MERGED:
        assert decision.merged_adapter is not None
        assert all(r.adapter_id == decision.merged_adapter
                   for r in decision.batch)
    if decision.mode is InferenceMode.MIXTURE:
        assert decision.merged_adapter is not None


@settings(max_examples=80, deadline=None)
@given(data=request_sets())
def test_vlora_starving_first(data):
    """Every starving request fits in the batch before any fresh one,
    up to capacity."""
    reqs, ctx = data
    policy = VLoRAPolicy(theta=0.5)
    decision = policy.schedule(reqs, ctx)
    starving = [r for r in reqs if r.credit > policy.theta]
    batch_ids = {r.request_id for r in decision.batch}
    if decision.mode is InferenceMode.UNMERGED:
        expected = min(len(starving), ctx.max_batch_size)
        included = sum(1 for r in starving if r.request_id in batch_ids)
        assert included == expected


@settings(max_examples=80, deadline=None)
@given(data=request_sets())
def test_vlora_single_tenant_goes_merged(data):
    """When all requests want one adapter and nothing starves, the
    policy serves merged (principle 1)."""
    reqs, ctx = data
    for r in reqs:
        r.adapter_id = "a"
        r.arrival_time = ctx.now  # fresh: zero waiting time
    policy = VLoRAPolicy(theta=10.0 + ctx.est_iteration_seconds
                         + ctx.est_switch_seconds)
    decision = policy.schedule(reqs, ctx)
    assert decision.mode is InferenceMode.MERGED
    assert decision.merged_adapter == "a"


@settings(max_examples=80, deadline=None)
@given(data=request_sets())
def test_deterministic_decisions(data):
    """Same inputs, same decision (no hidden randomness)."""
    reqs, ctx = data
    a = VLoRAPolicy(theta=0.5).schedule(reqs, ctx)
    b = VLoRAPolicy(theta=0.5).schedule(reqs, ctx)
    assert a.mode == b.mode
    assert a.merged_adapter == b.merged_adapter
    assert [r.request_id for r in a.batch] == [r.request_id for r in b.batch]
