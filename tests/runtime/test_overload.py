"""Overload protection: admission control, brownout, circuit breakers,
health-aware cluster dispatch, and bounded failover requeue."""

import math

import pytest

from repro.core import SystemBuilder
from repro.runtime import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AbortReason,
    AdapterBreaker,
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    FaultInjector,
    FaultKind,
    FaultSpec,
    MultiGPUServer,
    ReplicaHealth,
    Request,
    RequestStatus,
)
from repro.workloads.burst import apply_load_bursts


def burst(adapters, n=6, input_tokens=128, output_tokens=4, arrival=0.0,
          spacing=0.001, **kwargs):
    return [
        Request(adapter_id=adapters[i % len(adapters)],
                arrival_time=arrival + spacing * i,
                input_tokens=input_tokens, output_tokens=output_tokens,
                **kwargs)
        for i in range(n)
    ]


def req(total=100, priority=PRIORITY_NORMAL, slo=None):
    return Request(adapter_id="lora-0", arrival_time=0.0,
                   input_tokens=total - 1, output_tokens=1,
                   priority=priority, slo_s=slo)


# ---------------------------------------------------------------------------
# Admission control (unit)
# ---------------------------------------------------------------------------

class TestAdmissionController:
    def evaluate(self, ctl, r, now=0.0, queue=0, kv=1.0, it=0.05,
                 batch=32, deadline=None):
        return ctl.evaluate(r, now, queue_depth=queue, kv_free_frac=kv,
                            est_iteration_s=it, max_batch_size=batch,
                            deadline_s=deadline)

    def test_token_bucket_rejects_then_refills(self):
        ctl = AdmissionController(AdmissionConfig(rate_tokens_per_s=100.0))
        # Bucket starts at one second of refill (100 tokens).
        assert self.evaluate(ctl, req(total=100)) is None
        assert (self.evaluate(ctl, req(total=100))
                is AdmissionVerdict.RATE_LIMITED)
        # Half a second refills 50 tokens: a 50-token request fits.
        assert self.evaluate(ctl, req(total=50), now=0.5) is None

    def test_rejected_request_is_not_charged(self):
        ctl = AdmissionController(AdmissionConfig(rate_tokens_per_s=100.0))
        assert (self.evaluate(ctl, req(total=500))
                is AdmissionVerdict.RATE_LIMITED)
        # The failed oversized attempt must not have drained the bucket.
        assert self.evaluate(ctl, req(total=100)) is None

    def test_queue_watermark(self):
        ctl = AdmissionController(AdmissionConfig(max_queue_depth=8))
        assert self.evaluate(ctl, req(), queue=7) is None
        assert (self.evaluate(ctl, req(), queue=8)
                is AdmissionVerdict.QUEUE_FULL)

    def test_low_priority_gets_a_lower_watermark(self):
        ctl = AdmissionController(AdmissionConfig(
            max_queue_depth=8, low_priority_factor=0.5,
        ))
        low = req(priority=PRIORITY_LOW)
        assert (self.evaluate(ctl, low, queue=4)
                is AdmissionVerdict.QUEUE_FULL)
        assert self.evaluate(ctl, req(), queue=4) is None

    def test_kv_headroom_floor(self):
        ctl = AdmissionController(AdmissionConfig(min_kv_headroom=0.1))
        assert self.evaluate(ctl, req(), kv=0.2) is None
        assert (self.evaluate(ctl, req(), kv=0.05)
                is AdmissionVerdict.KV_PRESSURE)

    def test_slo_reject_uses_queue_lower_bound(self):
        ctl = AdmissionController(AdmissionConfig(slo_reject=True))
        # 96 queued / batch 32 = 3 rounds x 0.05 s > 0.1 s deadline.
        assert (self.evaluate(ctl, req(slo=0.1), queue=96, deadline=0.1)
                is AdmissionVerdict.DEADLINE_UNMEETABLE)
        assert self.evaluate(ctl, req(slo=1.0), queue=96,
                             deadline=1.0) is None

    def test_high_priority_bypasses_bucket_but_not_deadline(self):
        ctl = AdmissionController(AdmissionConfig(
            rate_tokens_per_s=10.0, max_queue_depth=2, slo_reject=True,
        ))
        hi = req(total=1000, priority=PRIORITY_HIGH, slo=0.1)
        assert self.evaluate(ctl, hi, queue=50) is None
        assert (self.evaluate(ctl, hi, queue=96, deadline=0.1)
                is AdmissionVerdict.DEADLINE_UNMEETABLE)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(rate_tokens_per_s=-1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(min_kv_headroom=1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(low_priority_factor=0.0)


# ---------------------------------------------------------------------------
# Brownout (unit)
# ---------------------------------------------------------------------------

class TestBrownoutController:
    def test_escalates_and_recovers_with_hysteresis(self):
        ctl = BrownoutController(BrownoutConfig(
            queue_high=10, dwell_s=0.1, ewma_alpha=1.0,
        ))
        assert ctl.observe(0.0, 30, 1.0) == 1
        # Dwell time not elapsed: no second escalation yet.
        assert ctl.observe(0.05, 30, 1.0) == 1
        assert ctl.observe(0.2, 30, 1.0) == 2
        # Pressure between exit (0.6) and enter (1.0): level holds.
        assert ctl.observe(0.4, 8, 1.0) == 2
        assert ctl.observe(0.6, 2, 1.0) == 1
        assert ctl.observe(0.8, 2, 1.0) == 0
        assert ctl.transitions == 4
        assert ctl.time_degraded > 0

    def test_kv_scarcity_adds_pressure(self):
        ctl = BrownoutController(BrownoutConfig(
            queue_high=100, kv_low=0.1, ewma_alpha=1.0, dwell_s=0.0,
        ))
        # Queue alone is negligible, but KV is nearly exhausted.
        assert ctl.observe(0.0, 1, 0.01) >= 1

    def test_level1_sheds_only_below_priority_floor(self):
        ctl = BrownoutController(BrownoutConfig(queue_high=1))
        ctl.level = 1
        waiting = [req(priority=PRIORITY_LOW),
                   req(priority=PRIORITY_NORMAL),
                   req(priority=PRIORITY_HIGH)]
        victims = ctl.shed_victims(waiting, excess=3)
        assert [v.priority for v in victims] == [PRIORITY_LOW]

    def test_deeper_levels_shed_lowest_priority_first(self):
        ctl = BrownoutController(BrownoutConfig(queue_high=1))
        ctl.level = 2
        waiting = [req(priority=PRIORITY_HIGH),
                   req(priority=PRIORITY_LOW),
                   req(priority=PRIORITY_NORMAL)]
        victims = ctl.shed_victims(waiting, excess=2)
        assert [v.priority for v in victims] == [PRIORITY_LOW,
                                                PRIORITY_NORMAL]

    def test_tier_properties(self):
        ctl = BrownoutController(BrownoutConfig(decode_cap=16))
        assert ctl.decode_cap is None and not ctl.force_merged
        ctl.level = 2
        assert ctl.decode_cap == 16 and not ctl.force_merged
        ctl.level = 3
        assert ctl.decode_cap == 16 and ctl.force_merged

    def test_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            BrownoutConfig(enter_pressure=0.5, exit_pressure=0.5)
        with pytest.raises(ValueError):
            BrownoutConfig(max_level=4)


# ---------------------------------------------------------------------------
# Circuit breakers (unit)
# ---------------------------------------------------------------------------

class TestAdapterBreaker:
    def test_opens_after_threshold(self):
        b = AdapterBreaker("lora-0", BreakerConfig(failure_threshold=2,
                                                   cooldown_s=1.0))
        assert not b.record_failure(0.0)
        assert not b.record_failure(0.1)
        assert b.record_failure(0.2)  # third consecutive failure opens
        assert b.state is BreakerState.OPEN
        assert not b.admit_allowed(0.3)

    def test_permanent_mode_matches_legacy_quarantine(self):
        b = AdapterBreaker("lora-0", BreakerConfig(failure_threshold=1,
                                                   cooldown_s=None))
        b.record_failure(0.0)
        assert b.record_failure(0.1)
        assert not b.admit_allowed(1e9)  # never half-opens

    def test_half_open_probe_then_close(self):
        b = AdapterBreaker("lora-0", BreakerConfig(failure_threshold=1,
                                                   cooldown_s=0.5))
        b.record_failure(0.0)
        b.record_failure(0.1)  # opens at 0.1
        assert not b.admit_allowed(0.2)
        assert b.admit_allowed(0.7)  # cooldown elapsed -> half-open
        assert b.state is BreakerState.HALF_OPEN
        assert b.record_success(0.8)  # probe succeeded -> closed
        assert b.state is BreakerState.CLOSED

    def test_failed_probe_reopens_with_escalated_cooldown(self):
        b = AdapterBreaker("lora-0", BreakerConfig(
            failure_threshold=1, cooldown_s=0.5, cooldown_multiplier=2.0,
        ))
        b.record_failure(0.0)
        b.record_failure(0.1)      # open #1 at 0.1 (cooldown 0.5)
        assert b.admit_allowed(0.7)
        assert b.record_failure(0.8)  # failed probe -> open #2
        # Second cooldown doubles to 1.0 s: still open at 0.8 + 0.9.
        assert not b.admit_allowed(1.7)
        assert b.admit_allowed(1.9)

    def test_success_resets_consecutive_failures(self):
        b = AdapterBreaker("lora-0", BreakerConfig(failure_threshold=2))
        b.record_failure(0.0)
        b.record_failure(0.1)
        b.record_success(0.2)
        assert b.consecutive_failures == 0
        assert not b.record_failure(0.3)


# ---------------------------------------------------------------------------
# Replica health (unit)
# ---------------------------------------------------------------------------

class TestReplicaHealth:
    def test_dead_scores_zero(self):
        h = ReplicaHealth(dead=True, queue_depth=0, iter_ewma=0.01)
        assert h.score(0.01) == 0.0

    def test_slowdown_and_queue_decay_score(self):
        idle = ReplicaHealth(dead=False, queue_depth=0, iter_ewma=0.01)
        slow = ReplicaHealth(dead=False, queue_depth=0, iter_ewma=0.04)
        busy = ReplicaHealth(dead=False, queue_depth=64, iter_ewma=0.01)
        assert idle.score(0.01) == 1.0
        assert slow.score(0.01) < idle.score(0.01)
        assert busy.score(0.01, queue_norm=64) < idle.score(0.01)

    def test_no_peer_data_is_neutral(self):
        h = ReplicaHealth(dead=False, queue_depth=0, iter_ewma=None)
        assert h.score(None) == 1.0


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------

class TestEngineAdmission:
    def test_queue_limit_rejects_overflow(self):
        builder = SystemBuilder(
            num_adapters=2,
            admission=AdmissionConfig(max_queue_depth=8),
        )
        engine = builder.build("v-lora")
        reqs = burst(builder.adapter_ids, n=40, output_tokens=64)
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.admission_rejections > 0
        assert metrics.num_completed + metrics.num_aborted == 40
        rejected = [r for r in reqs
                    if r.abort_reason is AbortReason.ADMISSION_REJECTED]
        assert len(rejected) == metrics.admission_rejections
        assert "admission_rejections" in metrics.summary()

    def test_high_priority_survives_queue_limit(self):
        builder = SystemBuilder(
            num_adapters=2,
            admission=AdmissionConfig(max_queue_depth=4),
        )
        engine = builder.build("v-lora")
        normal = burst(builder.adapter_ids, n=30, output_tokens=64)
        vip = burst(builder.adapter_ids, n=4, output_tokens=64,
                    arrival=0.05, priority=PRIORITY_HIGH)
        engine.submit(normal + vip)
        engine.run()
        assert all(r.status is RequestStatus.FINISHED for r in vip)

    def test_admission_off_by_default(self):
        builder = SystemBuilder(num_adapters=2)
        engine = builder.build("v-lora")
        engine.submit(burst(builder.adapter_ids, n=40, output_tokens=64))
        metrics = engine.run()
        assert metrics.admission_rejections == 0
        assert metrics.num_completed == 40
        assert "admission_rejections" not in metrics.summary()


class TestEngineBrownout:
    def _flood(self, brownout, n=80, **req_kwargs):
        builder = SystemBuilder(num_adapters=4, brownout=brownout)
        engine = builder.build("v-lora")
        reqs = burst(builder.adapter_ids, n=n, output_tokens=64,
                     **req_kwargs)
        engine.submit(reqs)
        return reqs, engine.run()

    def test_level1_sheds_low_priority(self):
        reqs, metrics = self._flood(
            BrownoutConfig(queue_high=8, dwell_s=10.0, max_level=1),
            priority=PRIORITY_LOW,
        )
        assert metrics.brownout_sheds > 0
        shed = [r for r in reqs
                if r.abort_reason is AbortReason.BROWNOUT_SHED]
        assert len(shed) == metrics.brownout_sheds
        assert all(r.priority == PRIORITY_LOW for r in shed)
        assert metrics.num_completed + metrics.num_aborted == len(reqs)

    def test_level1_spares_normal_priority(self):
        _, metrics = self._flood(
            BrownoutConfig(queue_high=8, dwell_s=10.0, max_level=1),
        )
        assert metrics.brownout_sheds == 0
        assert metrics.brownout_transitions > 0

    def test_level2_caps_decode_lengths(self):
        reqs, metrics = self._flood(
            BrownoutConfig(queue_high=8, dwell_s=0.01, max_level=2,
                           decode_cap=4),
        )
        assert metrics.brownout_truncations > 0
        truncated = [r for r in reqs if r.status is RequestStatus.FINISHED
                     and r.generated < r.output_tokens]
        assert truncated

    def test_level3_forces_merged_mode(self):
        # unmerge-only's policy never picks MERGED itself, so any merged
        # iteration under flood must come from the brownout override.
        builder = SystemBuilder(
            num_adapters=4,
            brownout=BrownoutConfig(queue_high=8, dwell_s=0.01,
                                    max_level=3, decode_cap=4),
        )
        engine = builder.build("unmerge-only")
        engine.submit(burst(builder.adapter_ids, n=80, output_tokens=64))
        metrics = engine.run()
        assert metrics.brownout_forced_merges > 0
        assert metrics.mode_iterations.get("merged", 0) > 0

    def test_brownout_off_by_default(self):
        builder = SystemBuilder(num_adapters=4)
        engine = builder.build("v-lora")
        engine.submit(burst(builder.adapter_ids, n=80, output_tokens=64,
                            priority=PRIORITY_LOW))
        metrics = engine.run()
        assert metrics.brownout_sheds == 0
        assert metrics.brownout_transitions == 0


class TestEngineBreakers:
    def test_breaker_reopens_adapter_after_cooldown(self):
        # lora-3's swaps fail only during [0, 0.4); with a cooldown the
        # breaker must re-probe and serve lora-3 again afterwards.
        inj = FaultInjector([
            FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, 0.4,
                      target="lora-3"),
        ])
        builder = SystemBuilder(
            num_adapters=4, gpu_adapter_slots=2, fault_injector=inj,
            breaker=BreakerConfig(failure_threshold=2, cooldown_s=0.3),
        )
        engine = builder.build("v-lora")
        early = burst(["lora-3"], n=4, output_tokens=4)
        late = burst(["lora-3"], n=4, arrival=2.0, spacing=0.2,
                     output_tokens=4)
        filler = burst(["lora-0", "lora-1"], n=8, spacing=0.25,
                       output_tokens=16)
        engine.submit(early + late + filler)
        metrics = engine.run()
        assert metrics.breaker_opens >= 1
        assert metrics.breaker_half_opens >= 1
        assert metrics.breaker_closes >= 1
        # Post-recovery lora-3 traffic completed: the adapter came back.
        assert any(r.status is RequestStatus.FINISHED for r in late)

    def test_permanent_quarantine_still_the_default(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, math.inf,
                      target="lora-3"),
        ])
        builder = SystemBuilder(num_adapters=4, gpu_adapter_slots=2,
                                fault_injector=inj)
        engine = builder.build("v-lora")
        engine.submit(burst(builder.adapter_ids, n=8, output_tokens=4)
                      + burst(["lora-3"], n=1, arrival=30.0))
        metrics = engine.run()
        assert metrics.adapters_quarantined == 1
        assert metrics.breaker_opens == 1
        assert metrics.breaker_half_opens == 0
        assert metrics.breaker_closes == 0


# ---------------------------------------------------------------------------
# Load-burst shaping
# ---------------------------------------------------------------------------

class TestLoadBursts:
    def test_compression_densifies_window(self):
        reqs = burst(["lora-0"], n=40, spacing=0.1)  # 10 rps over 4 s
        window = FaultSpec(FaultKind.LOAD_BURST, 1.0, 2.0, magnitude=4.0)
        out = apply_load_bursts(reqs, [window])
        assert len(out) == 40
        inside = [r for r in out if 1.0 <= r.arrival_time < 3.0]
        # The window's arrivals compress into its first quarter.
        assert inside and all(r.arrival_time < 1.5 + 1e-9 for r in inside)
        arrivals = [r.arrival_time for r in out]
        assert arrivals == sorted(arrivals)

    def test_no_windows_is_identity(self):
        reqs = burst(["lora-0"], n=10, spacing=0.1)
        before = [r.arrival_time for r in reqs]
        out = apply_load_bursts(reqs, FaultInjector([]))
        assert [r.arrival_time for r in out] == before

    def test_injector_source_and_magnitude_validation(self):
        inj = FaultInjector.random(horizon_s=10.0, seed=3,
                                   load_burst_rate=0.5)
        assert inj.load_burst_windows()
        assert inj.load_burst_factor(1e9) == 1.0 or True  # pure query
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LOAD_BURST, 0.0, magnitude=0.5)


# ---------------------------------------------------------------------------
# Cluster: dead-replica avoidance, health, bounded requeue
# ---------------------------------------------------------------------------

class TestClusterDispatchAvoidsDead:
    @pytest.mark.parametrize("dispatch", ["least-loaded", "round-robin",
                                          "adapter-affinity"])
    def test_prestart_dead_replica_gets_no_traffic(self, dispatch):
        # gpu-0 is dead before any arrival; dispatch must not use it, so
        # the run needs no failover at all.
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.0, target="gpu-0"),
        ])
        builder = SystemBuilder(num_adapters=4, fault_injector=inj)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2, dispatch=dispatch,
        )
        reqs = burst(builder.adapter_ids, n=12, output_tokens=16)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.num_completed == 12
        assert metrics.failover_events == 0
        assert server.per_engine_completed()[0] == 0

    def test_all_dead_still_terminates(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.0, target="gpu-0"),
            FaultSpec(FaultKind.ENGINE_FAIL, 0.0, target="gpu-1"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2,
        )
        reqs = burst(builder.adapter_ids, n=6, output_tokens=16)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.num_completed + metrics.num_aborted == 6
        assert all(r.is_terminal for r in reqs)


class TestClusterMetricsMerge:
    def test_run_summary_includes_cluster_events(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.2, target="gpu-0"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2,
        )
        reqs = burst(builder.adapter_ids, n=12, output_tokens=64)
        server.submit(reqs)
        merged = server.run()
        assert server.cluster_metrics.failover_events > 0
        # The collector returned by run() folds cluster-level events in
        # with per-replica metrics: nothing is reported on the side.
        assert merged.failover_events == server.cluster_metrics.failover_events
        assert merged.num_completed == sum(server.per_engine_completed())
        assert merged.summary()["failover_events"] == float(
            merged.failover_events
        )


class TestCascadingFailover:
    def _cascade(self, **server_kwargs):
        # gpu-0 dies early; gpu-1 finishes its own work, inherits some
        # of gpu-0's orphans, then dies at 4.0 s while still chewing on
        # them — those requests are orphaned twice before gpu-2 gets
        # them.
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.1, target="gpu-0"),
            FaultSpec(FaultKind.ENGINE_FAIL, 4.0, target="gpu-1"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=3,
            dispatch="round-robin", **server_kwargs,
        )
        reqs = burst(builder.adapter_ids, n=18, output_tokens=200)
        server.submit(reqs)
        return reqs, server, server.run()

    def test_two_cascade_conserves_requests(self):
        reqs, server, metrics = self._cascade()
        assert metrics.num_completed + metrics.num_aborted == 18
        assert all(r.is_terminal for r in reqs)
        # No double counting: each request appears exactly once across
        # completion and abort records.
        ids = ([r.request_id for r in metrics.records]
               + [a.request_id for a in metrics.aborts])
        assert len(ids) == len(set(ids)) == 18
        assert metrics.engine_failures == 2
        assert any(r.requeues >= 2 for r in reqs)

    def test_requeue_budget_aborts_repeat_orphans(self):
        reqs, server, metrics = self._cascade(max_requeues=1)
        assert metrics.requeue_limit_aborts > 0
        capped = [r for r in reqs if r.requeues > 1]
        assert capped
        assert all(r.abort_reason is AbortReason.ENGINE_FAILED
                   for r in capped)
        assert metrics.num_completed + metrics.num_aborted == 18

    def test_requeue_backoff_delays_rehomed_arrivals(self):
        reqs, server, metrics = self._cascade(requeue_backoff_s=0.5)
        assert metrics.num_completed + metrics.num_aborted == 18
        rehomed = [r for r in reqs if r.requeues >= 1 and
                   r.status is RequestStatus.FINISHED]
        assert rehomed
        # Backoff pushed every re-homed arrival past the first failure.
        assert all(r.arrival_time >= 0.5 for r in rehomed)


class TestHealthAwareDispatch:
    def test_health_scores_rank_straggler_below_peer(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_SLOW, 0.0, math.inf, magnitude=6.0,
                      target="gpu-0"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2,
        )
        server.submit(burst(builder.adapter_ids, n=16, output_tokens=32))
        server.run()
        scores = server.health_scores()
        assert scores[0] < scores[1]

    def test_failover_prefers_healthy_survivor(self):
        # gpu-0 dies; gpu-1 is a 10x straggler.  Health-aware failover
        # must push the orphans to gpu-2.
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.2, target="gpu-0"),
            FaultSpec(FaultKind.ENGINE_SLOW, 0.0, math.inf,
                      magnitude=10.0, target="gpu-1"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)

        def orphan_split(health_aware):
            server = MultiGPUServer.replicate(
                lambda: builder.build("v-lora"), num_gpus=3,
                dispatch="round-robin", health_aware=health_aware,
            )
            reqs = burst(builder.adapter_ids, n=18, output_tokens=200)
            server.submit(reqs)
            metrics = server.run()
            assert metrics.num_completed + metrics.num_aborted == 18
            rehomed = [r for r in reqs if r.requeues >= 1]
            assert rehomed
            on_straggler = sum(
                1 for r in rehomed
                if r.request_id in {
                    rec.request_id
                    for rec in server.engines[1].metrics.records
                }
            )
            return on_straggler, len(rehomed)

        aware_straggler, aware_total = orphan_split(True)
        assert aware_straggler < aware_total  # gpu-2 took orphans

    def test_constructor_validation(self):
        builder = SystemBuilder(num_adapters=2)
        engine = builder.build("v-lora")
        with pytest.raises(ValueError, match="health_floor"):
            MultiGPUServer([engine], health_floor=1.5)
        with pytest.raises(ValueError, match="max_requeues"):
            MultiGPUServer([engine], max_requeues=0)
