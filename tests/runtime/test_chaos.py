"""Chaos testing: randomized seeded fault schedules, hard invariants.

The engine must never raise under injected faults; it may only degrade.
After every run we check conservation (every submitted request reached a
terminal state), KV hygiene (no leaked blocks), and metrics consistency.
"""

from __future__ import annotations

import pytest

from repro.core import SystemBuilder
from repro.runtime import (
    FaultInjector,
    FaultKind,
    FaultSpec,
    MultiGPUServer,
    RequestStatus,
)
from repro.workloads import RetrievalWorkload

pytestmark = pytest.mark.chaos

FAULT_RATES = dict(
    swap_fail_rate=0.8,
    swap_slow_rate=0.5,
    kv_pressure_rate=0.4,
    engine_slow_rate=0.3,
)


def make_workload(adapter_ids, seed, rate_rps=20.0, duration_s=4.0):
    return RetrievalWorkload(
        adapter_ids=adapter_ids,
        rate_rps=rate_rps,
        duration_s=duration_s,
        use_task_heads=False,
        slo_s=2.0,
        seed=seed,
    ).generate()


def check_engine_invariants(engine, requests, metrics):
    # Conservation: every submitted request is terminal, none lost.
    finished = sum(r.status is RequestStatus.FINISHED for r in requests)
    aborted = sum(r.status is RequestStatus.ABORTED for r in requests)
    assert finished + aborted == len(requests)
    assert metrics.num_completed == finished
    assert metrics.num_aborted == aborted
    assert sum(metrics.abort_counts().values()) == aborted
    # Nothing left in flight.
    assert engine.num_live == 0
    # KV hygiene: once cached prefixes are flushed and injected pressure
    # lifted, every block must be back on the free list.
    engine.kv.set_reserved(0)
    engine.kv.evict_stale_prefixes(float("inf"))
    assert engine.kv.free_blocks == engine.kv.num_blocks
    engine.kv.check_invariants()


@pytest.mark.parametrize("seed", range(6))
def test_single_engine_chaos_never_raises(seed):
    injector = FaultInjector.random(
        horizon_s=30.0,
        seed=seed,
        adapter_ids=[f"lora-{i}" for i in range(4)],
        engine_ids=("engine-0",),
        **FAULT_RATES,
    )
    builder = SystemBuilder(
        num_adapters=4, gpu_adapter_slots=2, max_batch_size=8,
        fault_injector=injector, deadline_slo_factor=4.0,
    )
    engine = builder.build("v-lora")
    requests = make_workload(builder.adapter_ids, seed)
    engine.submit(requests)
    metrics = engine.run()
    check_engine_invariants(engine, requests, metrics)


@pytest.mark.parametrize("seed", [0, 3])
def test_single_engine_chaos_with_engine_fail(seed):
    random_faults = FaultInjector.random(
        horizon_s=30.0,
        seed=seed,
        adapter_ids=[f"lora-{i}" for i in range(4)],
        engine_ids=("engine-0",),
        **FAULT_RATES,
    )
    # Pin the kill early so it lands while requests are in flight
    # (a random start over the horizon can miss the short workload).
    injector = FaultInjector(
        list(random_faults.specs)
        + [FaultSpec(FaultKind.ENGINE_FAIL, 0.5, target="engine-0")]
    )
    builder = SystemBuilder(
        num_adapters=4, gpu_adapter_slots=2, fault_injector=injector,
    )
    engine = builder.build("v-lora")
    requests = make_workload(builder.adapter_ids, seed)
    engine.submit(requests)
    metrics = engine.run()
    assert engine.failed
    assert metrics.engine_failures == 1
    # A standalone failed engine strands its live requests (the cluster
    # layer is responsible for failover) but must not lose track of them.
    live = [r for r in requests if not r.is_terminal]
    assert engine.num_live == len(live)
    orphans = engine.drain_orphans()
    assert sorted(r.request_id for r in orphans) == sorted(
        r.request_id for r in live
    )
    assert engine.num_live == 0
    engine.kv.set_reserved(0)
    engine.kv.evict_stale_prefixes(float("inf"))
    assert engine.kv.free_blocks == engine.kv.num_blocks


@pytest.mark.parametrize("seed", range(4))
def test_cluster_chaos_conserves_requests(seed):
    adapter_ids = [f"lora-{i}" for i in range(4)]
    injector = FaultInjector.random(
        horizon_s=30.0,
        seed=seed,
        adapter_ids=adapter_ids,
        engine_ids=("gpu-0", "gpu-1", "gpu-2"),
        engine_fail_rate=0.05,
        **FAULT_RATES,
    )
    builder = SystemBuilder(
        num_adapters=4, gpu_adapter_slots=2, fault_injector=injector,
        deadline_slo_factor=4.0,
    )
    server = MultiGPUServer.replicate(
        lambda: builder.build("v-lora"), num_gpus=3,
    )
    requests = make_workload(adapter_ids, seed, rate_rps=30.0)
    server.submit(requests)
    metrics = server.run()
    assert all(r.is_terminal for r in requests)
    assert metrics.num_completed + metrics.num_aborted == len(requests)
    for engine in server.engines:
        if not engine.failed:
            assert engine.num_live == 0
            engine.kv.set_reserved(0)
            engine.kv.evict_stale_prefixes(float("inf"))
            assert engine.kv.free_blocks == engine.kv.num_blocks
            engine.kv.check_invariants()
    summary = metrics.summary()
    assert summary["completed"] + summary["aborted"] == float(len(requests))


def test_chaos_is_reproducible():
    adapter_ids = [f"lora-{i}" for i in range(4)]

    def run_once():
        injector = FaultInjector.random(
            horizon_s=30.0, seed=11, adapter_ids=adapter_ids,
            engine_ids=("engine-0",), **FAULT_RATES,
        )
        builder = SystemBuilder(
            num_adapters=4, gpu_adapter_slots=2, fault_injector=injector,
            deadline_slo_factor=4.0,
        )
        engine = builder.build("v-lora")
        engine.submit(make_workload(adapter_ids, seed=11))
        return engine.run()

    a, b = run_once(), run_once()
    assert a.summary() == b.summary()
