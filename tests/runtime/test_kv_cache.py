"""Tests for the paged KV cache, including property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.runtime import BlockAllocationError, PagedKVCache

pytestmark = pytest.mark.property


class TestBasics:
    def test_capacity_accounting(self):
        kv = PagedKVCache(num_blocks=10, block_size=16)
        assert kv.free_blocks == 10
        kv.allocate(1, 40)  # 3 blocks
        assert kv.used_blocks == 3
        assert kv.free_tokens() == 7 * 16

    def test_allocate_free_roundtrip(self):
        kv = PagedKVCache(num_blocks=4, block_size=16)
        kv.allocate(1, 64)
        assert kv.free_blocks == 0
        kv.free(1)
        assert kv.free_blocks == 4
        kv.check_invariants()

    def test_over_allocation_rejected(self):
        kv = PagedKVCache(num_blocks=2, block_size=16)
        with pytest.raises(BlockAllocationError):
            kv.allocate(1, 100)

    def test_duplicate_sequence_rejected(self):
        kv = PagedKVCache(num_blocks=4, block_size=16)
        kv.allocate(1, 16)
        with pytest.raises(BlockAllocationError):
            kv.allocate(1, 16)

    def test_unknown_sequence_rejected(self):
        kv = PagedKVCache(num_blocks=4, block_size=16)
        with pytest.raises(BlockAllocationError):
            kv.free(9)
        with pytest.raises(BlockAllocationError):
            kv.append_token(9)

    def test_append_grows_at_block_boundary(self):
        kv = PagedKVCache(num_blocks=4, block_size=4)
        kv.allocate(1, 4)
        assert kv.used_blocks == 1
        kv.append_token(1)  # 5th token -> new block
        assert kv.used_blocks == 2
        assert kv.sequence_tokens(1) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            PagedKVCache(num_blocks=0)
        kv = PagedKVCache(num_blocks=2)
        with pytest.raises(ValueError):
            kv.allocate(1, 0)
        with pytest.raises(ValueError):
            kv.allocate(1, 10, prefix_tokens=20)


class TestPrefixReuse:
    """§5 'KV cache reuse': repeated images share KV blocks."""

    def test_first_request_registers_prefix(self):
        kv = PagedKVCache(num_blocks=32, block_size=16)
        reused = kv.allocate(1, 300, prefix_key="img-A", prefix_tokens=256)
        assert reused == 0
        assert kv.has_prefix("img-A")

    def test_second_request_reuses_blocks(self):
        kv = PagedKVCache(num_blocks=64, block_size=16)
        kv.allocate(1, 300, prefix_key="img-A", prefix_tokens=256)
        used_before = kv.used_blocks
        reused = kv.allocate(2, 300, prefix_key="img-A", prefix_tokens=256)
        assert reused == 256  # 16 full blocks
        # Only the non-shared remainder allocates fresh blocks.
        assert kv.used_blocks == used_before + ((300 - 256 + 15) // 16)

    def test_shared_blocks_survive_owner_free(self):
        kv = PagedKVCache(num_blocks=64, block_size=16)
        kv.allocate(1, 256, prefix_key="img-A", prefix_tokens=256)
        kv.allocate(2, 256, prefix_key="img-A", prefix_tokens=256)
        kv.free(1)
        kv.check_invariants()
        # Sequence 2 still reads the shared prefix.
        assert kv.sequence_tokens(2) == 256
        kv.free(2)
        # Prefix still cached until dropped.
        assert kv.has_prefix("img-A")
        kv.drop_prefix("img-A")
        assert kv.free_blocks == 64

    def test_tiny_prefix_not_shared(self):
        kv = PagedKVCache(num_blocks=8, block_size=16)
        kv.allocate(1, 20, prefix_key="img-A", prefix_tokens=8)
        assert not kv.has_prefix("img-A")

    def test_stale_prefix_eviction(self):
        kv = PagedKVCache(num_blocks=64, block_size=16)
        kv.allocate(1, 256, prefix_key="old", prefix_tokens=256, now=0.0)
        kv.free(1)
        kv.allocate(2, 256, prefix_key="new", prefix_tokens=256, now=100.0)
        dropped = kv.evict_stale_prefixes(older_than=50.0)
        assert dropped == 1
        assert not kv.has_prefix("old")
        assert kv.has_prefix("new")

    def test_drop_unknown_prefix_rejected(self):
        with pytest.raises(KeyError):
            PagedKVCache(num_blocks=4).drop_prefix("nope")


class KVCacheMachine(RuleBasedStateMachine):
    """Stateful property test: invariants hold under arbitrary op orders."""

    def __init__(self):
        super().__init__()
        self.kv = PagedKVCache(num_blocks=24, block_size=4)
        self.live = set()
        self.next_id = 0

    @rule(tokens=st.integers(1, 40),
          with_prefix=st.booleans(),
          key=st.sampled_from(["a", "b", "c"]))
    def allocate(self, tokens, with_prefix, key):
        seq = self.next_id
        self.next_id += 1
        kwargs = {}
        if with_prefix:
            kwargs = {"prefix_key": key, "prefix_tokens": min(tokens, 8)}
        try:
            self.kv.allocate(seq, tokens, **kwargs)
            self.live.add(seq)
        except BlockAllocationError:
            pass  # full cache is a legal outcome

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def append(self, data):
        seq = data.draw(st.sampled_from(sorted(self.live)))
        before = self.kv.sequence_tokens(seq)
        try:
            self.kv.append_token(seq)
            assert self.kv.sequence_tokens(seq) == before + 1
        except BlockAllocationError:
            pass

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        seq = data.draw(st.sampled_from(sorted(self.live)))
        self.kv.free(seq)
        self.live.remove(seq)

    @rule(key=st.sampled_from(["a", "b", "c"]))
    def drop_prefix(self, key):
        if self.kv.has_prefix(key):
            self.kv.drop_prefix(key)

    @invariant()
    def blocks_conserved(self):
        self.kv.check_invariants()
        assert self.kv.free_blocks + self.kv.used_blocks == self.kv.num_blocks

    @invariant()
    def no_live_sequence_overflows(self):
        for seq in self.live:
            assert self.kv.sequence_tokens(seq) >= 1


TestKVCacheStateful = KVCacheMachine.TestCase
TestKVCacheStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
