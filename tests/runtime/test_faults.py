"""Fault injection and graceful degradation of the serving engine."""

import math

import pytest

from repro.core import SystemBuilder
from repro.runtime import (
    AbortReason,
    FaultInjector,
    FaultKind,
    FaultSpec,
    FaultSpecError,
    InferenceMode,
    MultiGPUServer,
    Request,
    RequestStatus,
)
from repro.runtime.kv_cache import PagedKVCache


def burst(adapters, n=6, input_tokens=128, output_tokens=4, arrival=0.0,
          **kwargs):
    return [
        Request(adapter_id=adapters[i % len(adapters)],
                arrival_time=arrival + 0.001 * i,
                input_tokens=input_tokens, output_tokens=output_tokens,
                **kwargs)
        for i in range(n)
    ]


class TestFaultSpec:
    def test_window_activity(self):
        s = FaultSpec(FaultKind.KV_PRESSURE, start=1.0, duration=2.0,
                      magnitude=0.5)
        assert not s.active_at(0.5)
        assert s.active_at(1.0)
        assert s.active_at(2.9)
        assert not s.active_at(3.0)

    def test_engine_fail_is_permanent(self):
        s = FaultSpec(FaultKind.ENGINE_FAIL, start=1.0, duration=0.1,
                      target="gpu-0")
        assert s.active_at(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.KV_PRESSURE, start=0.0, magnitude=1.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.ENGINE_SLOW, start=0.0, magnitude=0.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, start=-1.0)

    def test_validation_raises_typed_error(self):
        # FaultSpecError subclasses ValueError (old handlers keep working).
        assert issubclass(FaultSpecError, ValueError)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.NETWORK_PARTITION, start=-0.5)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.HEARTBEAT_LOSS, start=0.0, duration=0.0)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.ENGINE_FAIL, start=0.0, duration=-1.0)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.KV_PRESSURE, start=0.0, magnitude=-0.1)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.KV_PRESSURE, start=0.0, magnitude=1.0)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.SCALE_STALL, start=0.0, magnitude=0.9)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.LOAD_BURST, start=0.0, magnitude=0.5)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.KV_PRESSURE, start=math.nan)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.KV_PRESSURE, start=0.0, duration=math.nan)
        with pytest.raises(FaultSpecError):
            FaultSpec(FaultKind.KV_PRESSURE, start=0.0, magnitude=math.nan)

    def test_host_fail_is_permanent(self):
        s = FaultSpec(FaultKind.HOST_FAIL, start=2.0, duration=0.1,
                      target="host-0")
        assert not s.active_at(1.9)
        assert s.active_at(1e9)

    def test_dict_roundtrip(self):
        s = FaultSpec(FaultKind.ADAPTER_SWAP_SLOW, start=2.0, duration=1.0,
                      magnitude=3.0, target="lora-1")
        assert FaultSpec.from_dict(s.to_dict()) == s


class TestFaultInjector:
    def test_targeted_and_global_swap_failures(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, 1.0, target="lora-0"),
            FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 5.0, 1.0, target=None),
        ])
        assert inj.swap_should_fail("lora-0", 0.5)
        assert not inj.swap_should_fail("lora-1", 0.5)
        assert inj.swap_should_fail("lora-1", 5.5)  # untargeted hits all
        assert not inj.swap_should_fail("lora-0", 2.0)

    def test_slowdowns_compound(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_SLOW, 0.0, 10.0, magnitude=2.0,
                      target="gpu-0"),
            FaultSpec(FaultKind.ENGINE_SLOW, 0.0, 10.0, magnitude=3.0,
                      target="gpu-0"),
        ])
        assert inj.engine_slowdown("gpu-0", 1.0) == pytest.approx(6.0)
        assert inj.engine_slowdown("gpu-1", 1.0) == 1.0

    def test_random_schedule_is_deterministic(self):
        kwargs = dict(
            horizon_s=30.0, adapter_ids=["lora-0", "lora-1"],
            swap_fail_rate=0.5, swap_slow_rate=0.3, kv_pressure_rate=0.2,
            engine_slow_rate=0.1, engine_fail_rate=0.02,
        )
        a = FaultInjector.random(seed=7, **kwargs)
        b = FaultInjector.random(seed=7, **kwargs)
        c = FaultInjector.random(seed=8, **kwargs)
        assert a.specs == b.specs
        assert a.specs != c.specs

    def test_dicts_roundtrip(self):
        inj = FaultInjector.random(horizon_s=10.0, seed=1,
                                   adapter_ids=["lora-0"],
                                   swap_fail_rate=1.0, kv_pressure_rate=0.5)
        clone = FaultInjector.from_dicts(inj.to_dicts())
        assert clone.specs == inj.specs

    def test_gray_rates_at_zero_keep_old_seeds_identical(self):
        # The gray-failure draws must come after every legacy draw so
        # that schedules with the new rates at 0 reproduce old seeds.
        kwargs = dict(
            horizon_s=30.0, adapter_ids=["lora-0", "lora-1"],
            engine_ids=["gpu-0", "gpu-1"],
            swap_fail_rate=0.5, swap_slow_rate=0.3, kv_pressure_rate=0.2,
            engine_slow_rate=0.1, engine_fail_rate=0.02,
            load_burst_rate=0.1, scale_stall_rate=0.1,
        )
        legacy = FaultInjector.random(seed=7, **kwargs)
        explicit = FaultInjector.random(
            seed=7, partition_rate=0.0, heartbeat_loss_rate=0.0,
            host_fail_rate=0.0, host_ids=("host-0",), **kwargs)
        assert legacy.specs == explicit.specs

    def test_random_draws_gray_failure_kinds(self):
        inj = FaultInjector.random(
            horizon_s=30.0, seed=11, engine_ids=["gpu-0", "gpu-1"],
            host_ids=["host-0"], partition_rate=0.3,
            heartbeat_loss_rate=0.3, host_fail_rate=1.0,
        )
        counts = inj.counts_by_kind()
        assert counts.get("network_partition", 0) > 0
        assert counts.get("heartbeat_loss", 0) > 0
        assert counts.get("host_fail", 0) == 1

    def test_partition_and_heartbeat_queries(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.NETWORK_PARTITION, 1.0, 2.0, target="gpu-0"),
            FaultSpec(FaultKind.HEARTBEAT_LOSS, 4.0, 1.0, target="host-0"),
        ])
        assert inj.partitioned("gpu-0", 1.5)
        assert not inj.partitioned("gpu-0", 3.0)   # window closed
        assert not inj.partitioned("gpu-1", 1.5)   # wrong target
        assert inj.heartbeat_dropped("gpu-1", 4.5, host="host-0")
        assert not inj.heartbeat_dropped("gpu-1", 4.5, host="host-1")
        assert not inj.heartbeat_dropped("gpu-1", 4.5)

    def test_engine_failure_time_spans_host_faults(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 5.0, target="gpu-0"),
            FaultSpec(FaultKind.HOST_FAIL, 2.0, target="host-0"),
        ])
        assert inj.engine_failure_time("gpu-0") == 5.0
        assert inj.engine_failure_time("gpu-0", host="host-0") == 2.0
        assert inj.engine_failure_time("gpu-1", host="host-1") is None
        assert inj.engine_failed("gpu-1", 3.0, host="host-0")
        assert not inj.engine_failed("gpu-1", 1.0, host="host-0")


class TestKVReservation:
    def test_reserved_blocks_shrink_capacity(self):
        kv = PagedKVCache(num_blocks=10, block_size=16)
        kv.set_reserved(6)
        assert kv.free_blocks == 4
        assert not kv.can_allocate(5 * 16)
        assert kv.can_allocate(4 * 16)
        kv.set_reserved(0)
        assert kv.free_blocks == 10

    def test_reservation_does_not_touch_allocations(self):
        kv = PagedKVCache(num_blocks=10, block_size=16)
        kv.allocate(1, 64)
        kv.set_reserved(9)
        assert kv.free_blocks == 0
        assert kv.sequence_tokens(1) == 64
        kv.free(1)
        kv.check_invariants()


class TestEngineDegradation:
    """The two former RuntimeError crash paths now degrade gracefully."""

    def test_oversized_request_sheds_instead_of_crashing(self):
        builder = SystemBuilder(num_adapters=2, max_batch_size=4)
        engine = builder.build("v-lora")
        engine.kv = PagedKVCache(num_blocks=8, block_size=16)  # 128 tokens
        reqs = burst(builder.adapter_ids, n=3, input_tokens=1000,
                     output_tokens=4)
        engine.submit(reqs)
        metrics = engine.run()  # formerly: RuntimeError "KV cache exhausted"
        assert metrics.num_completed == 0
        assert metrics.num_aborted == 3
        assert metrics.abort_counts() == {"kv_exhausted": 3}
        assert all(r.status is RequestStatus.ABORTED for r in reqs)
        assert metrics.shed_events == 3

    def test_decode_overflow_sheds_instead_of_crashing(self):
        builder = SystemBuilder(num_adapters=1, max_batch_size=2)
        engine = builder.build("v-lora")
        # One request fits its prefill exactly but can never grow.
        engine.kv = PagedKVCache(num_blocks=2, block_size=16)
        req = Request(adapter_id="lora-0", arrival_time=0.0,
                      input_tokens=32, output_tokens=64)
        engine.submit([req])
        metrics = engine.run()  # formerly: "cannot hold even one decode step"
        assert req.status is RequestStatus.ABORTED
        assert req.abort_reason is AbortReason.KV_EXHAUSTED
        assert metrics.num_aborted == 1
        # The shed request released every block it held.
        assert engine.kv.free_blocks == engine.kv.num_blocks

    def test_transient_kv_pressure_stalls_then_recovers(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.KV_PRESSURE, 0.0, 0.2, magnitude=0.95),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        engine = builder.build("v-lora")
        engine.kv = PagedKVCache(num_blocks=64, block_size=16)
        reqs = burst(builder.adapter_ids, n=4, input_tokens=128,
                     output_tokens=4)
        engine.submit(reqs)
        metrics = engine.run()
        # Pressure window is short: the engine waits it out and finishes
        # everything (stall iterations recorded, nothing aborted).
        assert metrics.num_completed == 4
        assert metrics.kv_stall_iters > 0
        assert metrics.num_aborted == 0


class TestDeadlines:
    def test_deadline_abort(self):
        builder = SystemBuilder(num_adapters=1)
        engine = builder.build("v-lora")
        ok = Request(adapter_id="lora-0", arrival_time=0.0,
                     input_tokens=64, output_tokens=2)
        doomed = Request(adapter_id="lora-0", arrival_time=0.0,
                         input_tokens=64, output_tokens=400,
                         deadline_s=0.05)
        engine.submit([ok, doomed])
        metrics = engine.run()
        assert ok.status is RequestStatus.FINISHED
        assert doomed.status is RequestStatus.ABORTED
        assert doomed.abort_reason is AbortReason.DEADLINE_EXCEEDED
        assert metrics.abort_counts() == {"deadline_exceeded": 1}

    def test_slo_factor_deadline(self):
        builder = SystemBuilder(num_adapters=1, deadline_slo_factor=2.0)
        engine = builder.build("v-lora")
        doomed = Request(adapter_id="lora-0", arrival_time=0.0,
                         input_tokens=64, output_tokens=2000, slo_s=0.05)
        engine.submit([doomed])
        metrics = engine.run()
        assert doomed.status is RequestStatus.ABORTED
        # Aborted SLO-carrying request counts as a miss, not a crash.
        assert doomed.met_slo() is False
        assert metrics.slo_attainment() == 0.0

    def test_aborted_request_has_latency(self):
        r = Request(adapter_id="a", arrival_time=1.0, input_tokens=8,
                    output_tokens=2)
        r.abort(3.0, AbortReason.DEADLINE_EXCEEDED)
        assert r.latency() == pytest.approx(2.0)
        fresh = Request(adapter_id="a", arrival_time=0.0, input_tokens=8,
                        output_tokens=2)
        with pytest.raises(RuntimeError):
            fresh.latency()
        assert fresh.met_slo() is None


class TestSwapFaults:
    def _engine(self, specs, **builder_kwargs):
        builder = SystemBuilder(
            num_adapters=4, gpu_adapter_slots=2,
            fault_injector=FaultInjector(specs), **builder_kwargs
        )
        return builder, builder.build("v-lora")

    def test_transient_swap_failure_retries_and_completes(self):
        # lora-2 / lora-3 start non-resident (2 slots) and their swaps
        # fail for a short window; backoff + retry must finish them all.
        specs = [FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, 0.3)]
        builder, engine = self._engine(specs)
        reqs = burst(builder.adapter_ids, n=8, output_tokens=4)
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_completed == 8
        assert metrics.swap_retries > 0
        assert metrics.num_aborted == 0

    def test_permanent_swap_failure_quarantines_adapter(self):
        specs = [FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, math.inf,
                           target="lora-3")]
        builder, engine = self._engine(specs)
        reqs = burst(builder.adapter_ids, n=8, output_tokens=4)
        engine.submit(reqs)
        metrics = engine.run()
        done = [r for r in reqs if r.status is RequestStatus.FINISHED]
        dead = [r for r in reqs if r.status is RequestStatus.ABORTED]
        assert len(done) == 6  # every lora-3 request aborted
        assert {r.adapter_id for r in dead} == {"lora-3"}
        assert all(r.abort_reason is AbortReason.ADAPTER_UNAVAILABLE
                   for r in dead)
        assert metrics.adapters_quarantined == 1
        assert metrics.swap_retries >= engine.config.max_swap_retries

    def test_quarantined_adapter_rejects_new_arrivals(self):
        specs = [FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, math.inf,
                           target="lora-3")]
        builder, engine = self._engine(specs)
        early = burst(["lora-3"], n=2, output_tokens=64)
        late = burst(["lora-3"], n=1, arrival=30.0)
        filler = burst(["lora-0"], n=2, output_tokens=600)
        engine.submit(early + late + filler)
        engine.run()
        assert all(r.status is RequestStatus.ABORTED for r in early + late)

    def test_swap_slowdown_inflates_stall(self):
        slow = [FaultSpec(FaultKind.ADAPTER_SWAP_SLOW, 0.0, math.inf,
                          magnitude=50.0)]
        reqs_args = dict(n=6, output_tokens=2)
        _, engine_slow = self._engine(slow)
        builder, engine_fast = self._engine([])
        for engine in (engine_slow, engine_fast):
            engine.submit(burst(builder.adapter_ids, **reqs_args))
        slow_m = engine_slow.run()
        fast_m = engine_fast.run()
        assert slow_m.num_completed == fast_m.num_completed == 6
        assert slow_m.mean_latency() > fast_m.mean_latency()

    def test_merged_target_failure_falls_back_to_unmerged(self):
        # All traffic on one non-resident adapter whose swap always
        # fails: nothing can run, requests abort after retries; the
        # engine must not crash and must leave merged mode.
        specs = [FaultSpec(FaultKind.ADAPTER_SWAP_FAIL, 0.0, math.inf,
                           target="lora-3")]
        builder, engine = self._engine(specs)
        engine.submit(burst(["lora-3"], n=6, output_tokens=8))
        metrics = engine.run()
        assert metrics.num_aborted == 6
        assert engine.current_mode is not InferenceMode.MERGED


class TestEngineFailureAndFailover:
    def test_single_engine_failure_stops_cleanly(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.05, target="engine-0"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        engine = builder.build("v-lora")
        engine.submit(burst(builder.adapter_ids, n=10, output_tokens=200))
        metrics = engine.run()
        assert engine.failed
        assert engine.failed_at is not None
        assert metrics.engine_failures == 1

    def test_cluster_failover_requeues_to_survivor(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.2, target="gpu-0"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2,
            dispatch="round-robin",
        )
        reqs = burst(builder.adapter_ids, n=12, output_tokens=64)
        server.submit(reqs)
        metrics = server.run()
        assert metrics.num_completed == 12
        assert metrics.num_aborted == 0
        assert metrics.failover_events > 0
        assert metrics.engine_failures == 1
        assert all(r.status is RequestStatus.FINISHED for r in reqs)

    def test_all_engines_dead_aborts_orphans(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_FAIL, 0.05, target="gpu-0"),
            FaultSpec(FaultKind.ENGINE_FAIL, 0.05, target="gpu-1"),
        ])
        builder = SystemBuilder(num_adapters=2, fault_injector=inj)
        server = MultiGPUServer.replicate(
            lambda: builder.build("v-lora"), num_gpus=2,
        )
        reqs = burst(builder.adapter_ids, n=10, output_tokens=500)
        server.submit(reqs)
        metrics = server.run()
        # Conservation: every request is terminal, none lost.
        assert metrics.num_completed + metrics.num_aborted == 10
        assert metrics.abort_counts().get("engine_failed", 0) > 0
        assert all(r.is_terminal for r in reqs)

    def test_straggler_engine_slows_but_completes(self):
        inj = FaultInjector([
            FaultSpec(FaultKind.ENGINE_SLOW, 0.0, math.inf, magnitude=5.0,
                      target="engine-0"),
        ])
        builder = SystemBuilder(num_adapters=2)
        fast = builder.build("v-lora")
        builder_slow = SystemBuilder(num_adapters=2, fault_injector=inj)
        slow = builder_slow.build("v-lora")
        for engine in (fast, slow):
            engine.submit(burst(builder.adapter_ids, n=6, output_tokens=8))
        fast_m = fast.run()
        slow_m = slow.run()
        assert slow_m.num_completed == fast_m.num_completed == 6
        assert slow_m.mean_latency() > fast_m.mean_latency()


class TestMetricsResilience:
    def test_summary_without_completions_does_not_raise(self):
        builder = SystemBuilder(num_adapters=1)
        engine = builder.build("v-lora")
        engine.kv = PagedKVCache(num_blocks=2, block_size=16)
        engine.submit(burst(["lora-0"], n=2, input_tokens=500))
        metrics = engine.run()
        summary = metrics.summary()
        assert summary["completed"] == 0.0
        assert summary["aborted"] == 2.0
        assert summary["goodput_rps"] == 0.0
        assert "avg_token_latency_ms" not in summary

    def test_goodput_charges_aborts(self):
        builder = SystemBuilder(num_adapters=1, deadline_slo_factor=1.0)
        engine = builder.build("v-lora")
        reqs = burst(["lora-0"], n=6, output_tokens=4)
        reqs[-1].output_tokens = 5000
        reqs[-1].slo_s = 0.2
        engine.submit(reqs)
        metrics = engine.run()
        assert metrics.num_aborted == 1
        assert 0 < metrics.goodput_rps() <= metrics.throughput_rps()
