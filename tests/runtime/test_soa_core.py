"""The SoA core is the object core, bit for bit.

``SoAServingEngine`` re-implements the serving loop over parallel
arrays; its contract is *bit-identical* results — the same completed
and aborted request sets, the same terminal metrics floats, the same
golden seed-0 trace digest — for every supported configuration.  These
tests pin that contract:

* a hypothesis property test drives both cores over arbitrary bounded
  retrieval mixes and compares full digests;
* targeted unit tests cover the masked deadline-expiry pass and the
  KV-pressure shed/preemption pass (the two passes that abort or
  reorder work wholesale, where a vectorization bug would show up as a
  silently different victim set);
* the golden seed-0 snapshot from ``test_determinism`` must be
  reproduced by the SoA core, not just by the engine that wrote it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SystemBuilder
from repro.hardware.gpu import A100_80GB
from repro.runtime import FaultInjector, reset_request_ids
from repro.runtime.engine import ServingEngine
from repro.runtime.overload import AdmissionConfig
from repro.runtime.request import AbortReason
from repro.runtime.soa_core import SoAServingEngine
from repro.workloads import RetrievalWorkload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "determinism.json")

#: Just small enough that Qwen-VL-7B fits but the KV pool is starved,
#: forcing the shed/preemption pass to run (see test_kv_shed_pass).
SMALL_GPU = dataclasses.replace(A100_80GB, name="A100-21GB",
                                hbm_capacity_gb=21.0)


def _digest(metrics):
    """Order-free, cache-counter-free comparable form of a run."""
    summary = dict(metrics.summary())
    # The two cores memoize differently (signature table vs component
    # memos); the *costs* must match bit for bit, the hit counters
    # legitimately differ.
    summary.pop("cost_cache_hits", None)
    summary.pop("cost_cache_misses", None)
    records = sorted(
        (dataclasses.astuple(r) for r in metrics.records),
        key=lambda t: t[0],
    )
    aborts = sorted(
        (dataclasses.astuple(a) for a in metrics.aborts),
        key=lambda t: t[0],
    )
    return summary, records, aborts


def _run(system, builder_kw, wl_kw, core):
    builder = SystemBuilder(**builder_kw)
    reset_request_ids()
    requests = RetrievalWorkload(builder.adapter_ids, **wl_kw).generate()
    engine = builder.build(system, core=core)
    engine.submit(requests)
    metrics = engine.run()
    return engine, _digest(metrics)


def _both(system, builder_kw, wl_kw):
    _, obj = _run(system, builder_kw, wl_kw, "object")
    soa_engine, soa = _run(system, builder_kw, wl_kw, "soa")
    return obj, soa, soa_engine


# -- property equivalence -----------------------------------------------------


@pytest.mark.property
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    system=st.sampled_from(["v-lora", "s-lora", "punica", "dlora",
                            "merge-only", "unmerge-only"]),
    rate=st.sampled_from([4.0, 8.0, 14.0]),
    task_heads=st.booleans(),
)
def test_cores_equivalent(seed, system, rate, task_heads):
    builder_kw = dict(num_adapters=4)
    wl_kw = dict(rate_rps=rate, duration_s=12.0, seed=seed,
                 use_task_heads=task_heads)
    obj, soa, _ = _both(system, builder_kw, wl_kw)
    assert obj == soa


# -- golden seed-0 digest -----------------------------------------------------


def _trace_digest(metrics) -> str:
    # Mirrors test_determinism._trace_digest (kept in sync by the
    # golden comparison itself: a drift here fails the assert below).
    rows = sorted(
        [("done", r.request_id, r.adapter_id, r.arrival_time,
          r.first_token_time, r.finish_time) for r in metrics.records]
        + [("abort", a.request_id, a.adapter_id, a.arrival_time,
            a.abort_time, a.reason) for a in metrics.aborts]
    )
    blob = json.dumps(rows, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def test_soa_reproduces_golden_seed0():
    """The checked-in seed-0 snapshot, regenerated through the SoA core."""
    with open(GOLDEN_PATH) as fh:
        golden = dict(json.load(fh)["engine"])
    builder = SystemBuilder(num_adapters=4, max_batch_size=8)
    reset_request_ids()
    requests = RetrievalWorkload(
        adapter_ids=[f"lora-{i}" for i in range(4)], rate_rps=14.0,
        duration_s=2.0, use_task_heads=False, slo_s=4.0, seed=0,
    ).generate()
    engine = builder.build("v-lora", core="soa")
    engine.submit(requests)
    metrics = engine.run()
    fresh = json.loads(json.dumps(
        {**metrics.summary(), "trace_digest": _trace_digest(metrics)}))
    for fp in (golden, fresh):
        fp.pop("cost_cache_hits", None)
        fp.pop("cost_cache_misses", None)
    assert fresh == golden


# -- masked deadline-expiry pass ---------------------------------------------


def test_deadline_expiry_pass():
    builder_kw = dict(num_adapters=4, deadline_slo_factor=1.2)
    wl_kw = dict(rate_rps=12.0, duration_s=30.0, slo_s=2.0, seed=6)
    obj, soa, engine = _both("v-lora", builder_kw, wl_kw)
    assert obj == soa
    _, _, aborts = soa
    # The scenario is tuned to actually overrun deadlines; a vacuous
    # pass would make this test meaningless.
    assert len(aborts) > 100
    reasons = {a[5] for a in aborts}  # AbortRecord.reason
    assert reasons == {AbortReason.DEADLINE_EXCEEDED.value}


def test_deadline_expiry_respects_deadlines():
    builder = SystemBuilder(num_adapters=4, deadline_slo_factor=1.2)
    reset_request_ids()
    requests = RetrievalWorkload(
        builder.adapter_ids, rate_rps=12.0, duration_s=30.0,
        slo_s=2.0, seed=6).generate()
    deadline_of = {}
    for r in requests:
        deadline_of[r.request_id] = r.arrival_time + 1.2 * r.slo_s
    engine = builder.build("v-lora", core="soa")
    engine.submit(requests)
    metrics = engine.run()
    assert metrics.aborts
    for a in metrics.aborts:
        # Expiry may only fire once the clock passes the deadline.
        assert a.abort_time >= deadline_of[a.request_id]


# -- KV-pressure shed pass ----------------------------------------------------


def test_kv_shed_pass():
    builder_kw = dict(num_adapters=4, gpu=SMALL_GPU)
    wl_kw = dict(rate_rps=16.0, duration_s=30.0, seed=7)
    obj, soa, engine = _both("v-lora", builder_kw, wl_kw)
    assert obj == soa
    summary = soa[0]
    assert summary["preemptions"] > 0
    engine.check_kv_invariants()


def test_kv_invariants_hold_every_step():
    builder = SystemBuilder(num_adapters=4, gpu=SMALL_GPU)
    reset_request_ids()
    requests = RetrievalWorkload(
        builder.adapter_ids, rate_rps=16.0, duration_s=10.0,
        seed=7).generate()
    engine = builder.build("v-lora", core="soa")
    engine.submit(requests)
    for _ in range(50_000):
        before = engine.clock.now
        engine.step()
        engine.check_kv_invariants()
        assert engine.clock.now >= before
        # run()'s own termination condition: arrivals drained and no
        # active work (cached prefix entries may still hold blocks —
        # that's what check_kv_invariants accounts for above).
        if engine._pend_pos >= engine._pend_n and not engine._n_active:
            break
    else:
        pytest.fail("engine did not drain")
    assert engine.metrics.num_preemptions > 0


# -- cache toggle -------------------------------------------------------------


def test_soa_cache_toggle_identity():
    wl_kw = dict(rate_rps=8.0, duration_s=20.0, seed=3)
    _, on = _run("v-lora", dict(num_adapters=4), wl_kw, "soa")
    _, off = _run("v-lora",
                  dict(num_adapters=4, enable_cost_cache=False),
                  wl_kw, "soa")
    assert on == off


# -- unsupported configurations ----------------------------------------------


def test_fault_injection_unsupported():
    builder = SystemBuilder(num_adapters=2,
                            fault_injector=FaultInjector([]))
    with pytest.raises(ValueError, match="fault injection"):
        builder.build("v-lora", core="soa")


def test_overload_protection_unsupported():
    builder = SystemBuilder(num_adapters=2, admission=AdmissionConfig())
    with pytest.raises(ValueError, match="overload"):
        builder.build("v-lora", core="soa")


def test_engine_cls_core_conflict():
    builder = SystemBuilder(num_adapters=2)
    with pytest.raises(ValueError, match="engine_cls"):
        builder.build("v-lora", engine_cls=ServingEngine, core="soa")


def test_unknown_core_rejected():
    builder = SystemBuilder(num_adapters=2)
    with pytest.raises(ValueError, match="unknown core"):
        builder.build("v-lora", core="simd")


def test_placement_unsupported():
    from repro.runtime.placement import PlacementConfig

    builder = SystemBuilder(num_adapters=2, placement=PlacementConfig())
    with pytest.raises(ValueError, match="placement"):
        builder.build("v-lora", core="soa")
    # The object core accepts the same builder unchanged.
    builder.build("v-lora", core="object")


def test_submit_after_run_rejected():
    builder = SystemBuilder(num_adapters=2)
    reset_request_ids()
    requests = RetrievalWorkload(
        builder.adapter_ids, rate_rps=4.0, duration_s=2.0,
        seed=0).generate()
    engine = builder.build("v-lora", core="soa")
    engine.submit(requests)
    engine.run()
    with pytest.raises(RuntimeError, match="before run"):
        engine.submit(requests)
