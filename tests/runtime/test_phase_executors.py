"""The composed phase-executor engine is the old monolithic loop, bit for bit.

The engine's iteration loop was refactored from one monolithic body
into :class:`PrefillExecutor` / :class:`DecodeExecutor` behind the
:class:`PhaseExecutor` protocol (and the disaggregated runtime builds
on that seam).  The contract is *bit-identity*: every float evaluated
in the same order, every rng draw at the same point, so the composed
engine reproduces the pre-refactor engine exactly.

``MonolithicEngine`` below carries the pre-refactor ``_execute_cached``
/ ``_execute_uncached`` / ``_finalize`` bodies **verbatim** (recovered
from git history); a hypothesis property drives both engines over
arbitrary bounded workloads — systems x seeds x fault menus x cache
on/off — and compares full digests.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SystemBuilder
from repro.runtime import FaultInjector, reset_request_ids
from repro.runtime.costcache import BatchSignature
from repro.runtime.engine import ServingEngine
from repro.runtime.failure_detection import Completion
from repro.runtime.metrics import RequestRecord
from repro.runtime.modes import InferenceMode
from repro.runtime.request import Request, RequestStatus
from repro.workloads import RetrievalWorkload

from typing import Dict, List, Optional, Sequence


class MonolithicEngine(ServingEngine):
    """The pre-refactor engine: one body per concern, no executors.

    The three method bodies below are copied verbatim from the last
    monolithic revision of ``repro/runtime/engine.py``; do not "clean
    them up" — their value is being the historical reference.
    """

    def _execute_cached(self, batch: Sequence[Request],
                        mode: InferenceMode,
                        merged: Optional[str]) -> float:
        prefills = [r for r in batch if not r.prefilled]
        decodes = [r for r in batch if r.prefilled]
        adapter_tokens: Dict[str, int] = {}

        launches: tuple = ()
        if prefills:
            effective = [
                max(r.context_len - self._reused_tokens.get(r.request_id, 0), 1)
                for r in prefills
            ]
            if self.config.batch_prefills:
                num_images = sum(r.num_images for r in prefills)
                launches = ((tuple(effective), num_images),)
            else:
                launches = tuple(
                    ((tok,), r.num_images)
                    for r, tok in zip(prefills, effective)
                )
            for r, tok in zip(prefills, effective):
                adapter_tokens[r.adapter_id] = (
                    adapter_tokens.get(r.adapter_id, 0) + tok
                )

        num_decodes = 0
        total_context = 0
        lm = False
        head_classes = 0
        if decodes:
            num_decodes = len(decodes)
            for r in decodes:
                total_context += r.context_len
                if r.use_task_head:
                    classes = self._task_classes_of(r.adapter_id)
                    if classes > head_classes:
                        head_classes = classes
                else:
                    lm = True
                adapter_tokens[r.adapter_id] = (
                    adapter_tokens.get(r.adapter_id, 0) + 1
                )

        groups = tuple(adapter_tokens.items())
        ranks = tuple(
            (a, self._rank_of(a)) for a in adapter_tokens
        )
        if merged is not None and merged not in adapter_tokens:
            ranks += ((merged, self._rank_of(merged)),)

        sig = BatchSignature(
            mode=mode,
            merged_adapter=merged,
            prefill_launches=launches,
            num_decodes=num_decodes,
            decode_context_total=total_context,
            lm_head=lm,
            task_head_classes=head_classes,
            adapter_groups=groups,
            adapter_ranks=ranks,
        )
        base, extra_mean = self.cost_cache.lookup(sig)
        if not adapter_tokens:
            return base
        extra = self.mode_exec.extra_seconds_from_mean(extra_mean, self._rng)
        self.metrics.lora_extra_time_total += extra
        return base + extra

    def _execute_uncached(self, batch: Sequence[Request],
                          mode: InferenceMode,
                          merged: Optional[str]) -> float:
        prefills = [r for r in batch if not r.prefilled]
        decodes = [r for r in batch if r.prefilled]
        t = 0.0
        adapter_tokens: Dict[str, int] = {}

        if prefills:
            effective = [
                max(r.context_len - self._reused_tokens.get(r.request_id, 0), 1)
                for r in prefills
            ]
            num_images = sum(r.num_images for r in prefills)
            if self.config.batch_prefills:
                t += self.iter_costs.prefill_seconds(effective, num_images)
            else:
                # Per-request prefill: each pays its own iteration.
                for r, tok in zip(prefills, effective):
                    t += self.iter_costs.prefill_seconds([tok], r.num_images)
            for r, tok in zip(prefills, effective):
                adapter_tokens[r.adapter_id] = (
                    adapter_tokens.get(r.adapter_id, 0) + tok
                )

        if decodes:
            contexts = [r.context_len for r in decodes]
            lm = any(not r.use_task_head for r in decodes)
            head_classes = max(
                (self.adapters.spec(r.adapter_id).task_head_classes or 101
                 for r in decodes if r.use_task_head),
                default=0,
            )
            t += self.iter_costs.decode_seconds(
                contexts, lm_head=lm, task_head_classes=head_classes
            )
            for r in decodes:
                adapter_tokens[r.adapter_id] = (
                    adapter_tokens.get(r.adapter_id, 0) + 1
                )

        if adapter_tokens:
            ranks = {
                a: self.adapters.spec(a).rank for a in adapter_tokens
            }
            if merged is not None:
                ranks.setdefault(merged, self.adapters.spec(merged).rank)
            extra = self.mode_exec.extra_seconds(
                mode, adapter_tokens, ranks,
                merged_adapter=merged,
                rng=self._rng,
            )
            t += extra
            self.metrics.lora_extra_time_total += extra
        return t

    def _finalize(self, batch: Sequence[Request]) -> None:
        now = self.clock.now
        cap = self._brownout.decode_cap if self._brownout is not None else None
        finished: List[Request] = []
        for r in batch:
            if not r.prefilled:
                r.prefilled = True
                r.status = RequestStatus.RUNNING
            self.kv.append_token(r.request_id)
            r.generated += 1
            if r.first_token_time is None:
                r.first_token_time = now
            if r.is_finished or (cap is not None and r.generated >= cap):
                if not r.is_finished:
                    self.metrics.brownout_truncations += 1
                r.finish_time = now
                r.status = RequestStatus.FINISHED
                finished.append(r)
        for r in finished:
            self.kv.free(r.request_id)
            self._reused_tokens.pop(r.request_id, None)
            self._drop_active(r)
            if self._fencing:
                self.completion_outbox.append(Completion(
                    request=r, token=r.lease, kind="finish",
                    record=RequestRecord.from_request(r), time=now,
                ))
            else:
                self.metrics.complete(r)


FAULT_MENUS = (
    None,
    dict(swap_fail_rate=0.6, swap_slow_rate=0.4),
    dict(kv_pressure_rate=0.5, engine_slow_rate=0.4),
    dict(swap_fail_rate=0.5, swap_slow_rate=0.4,
         kv_pressure_rate=0.4, engine_slow_rate=0.3),
)


def _digest(metrics):
    """Fully comparable form of a run — *including* cache counters.

    Unlike the SoA equivalence digest, the monolithic engine memoizes
    through the exact same signature table, so even the hit/miss
    counters must agree.
    """
    summary = dict(metrics.summary())
    records = sorted(
        (dataclasses.astuple(r) for r in metrics.records),
        key=lambda t: t[0],
    )
    aborts = sorted(
        (dataclasses.astuple(a) for a in metrics.aborts),
        key=lambda t: t[0],
    )
    return summary, records, aborts


def _run(system, engine_cls, *, seed, rate, task_heads, cache, fault_menu):
    injector = None
    if fault_menu is not None:
        injector = FaultInjector.random(
            horizon_s=30.0,
            seed=seed,
            adapter_ids=[f"lora-{i}" for i in range(4)],
            engine_ids=("engine-0",),
            **fault_menu,
        )
    builder = SystemBuilder(
        num_adapters=4, gpu_adapter_slots=2, max_batch_size=8,
        fault_injector=injector, enable_cost_cache=cache,
        deadline_slo_factor=4.0,
    )
    reset_request_ids()
    requests = RetrievalWorkload(
        builder.adapter_ids, rate_rps=rate, duration_s=10.0, seed=seed,
        use_task_heads=task_heads, slo_s=2.0,
    ).generate()
    engine = builder.build(system, engine_cls=engine_cls)
    engine.submit(requests)
    return _digest(engine.run())


@pytest.mark.property
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    system=st.sampled_from(["v-lora", "s-lora", "punica", "dlora",
                            "merge-only", "unmerge-only"]),
    rate=st.sampled_from([4.0, 10.0, 16.0]),
    task_heads=st.booleans(),
    cache=st.booleans(),
    fault_menu=st.sampled_from(FAULT_MENUS),
)
def test_composed_equals_monolithic(seed, system, rate, task_heads,
                                    cache, fault_menu):
    kw = dict(seed=seed, rate=rate, task_heads=task_heads, cache=cache,
              fault_menu=fault_menu)
    composed = _run(system, None, **kw)
    monolithic = _run(system, MonolithicEngine, **kw)
    assert composed == monolithic


def test_executors_compose_the_engine():
    """The seam the disaggregated runtime relies on actually exists."""
    engine = SystemBuilder(num_adapters=2).build("v-lora")
    prefill, decode = engine.phase_executors
    assert prefill.phase == "prefill"
    assert decode.phase == "decode"
    assert prefill is engine.prefill_exec
    assert decode is engine.decode_exec
