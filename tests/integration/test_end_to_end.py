"""Cross-module integration tests: the full V-LoRA pipeline.

These tests exercise the seams between packages: distillation -> fusion
-> facade -> engine -> metrics -> analysis -> trace replay, and the
conservation properties the whole system must uphold.
"""

import numpy as np
import pytest

from repro import (
    KnowledgeItem,
    RetrievalWorkload,
    SystemBuilder,
    VideoAnalyticsWorkload,
    VLoRA,
    VLoRAConfig,
)
from repro.analysis import SweepRunner, SystemComparison
from repro.runtime import Request
from repro.workloads.replay import load_trace, save_trace


class TestOfflineToOnline:
    def test_fusion_to_serving_pipeline(self):
        """Oracle fusion plans adapters; the engine serves against them;
        the adapter ids flow through completion records."""
        vlora = VLoRA(VLoRAConfig(max_batch_size=16))
        result = vlora.prepare_adapters(
            [KnowledgeItem(f"img-{i}", "image_classification", 0.9)
             for i in range(3)]
            + [KnowledgeItem("vid-0", "video_classification", 0.9)]
        )
        workload = RetrievalWorkload(vlora.adapter_ids, rate_rps=3.0,
                                     duration_s=10.0, seed=17)
        metrics = vlora.serve(workload.generate())
        served_adapters = set(metrics.by_adapter())
        assert served_adapters <= set(vlora.adapter_ids)
        assert metrics.num_completed > 0
        assert result.num_adapters == len(vlora.adapter_ids)

    def test_mixed_head_types_from_fusion(self):
        """Adapters with task heads serve 1-round requests; LM-head
        adapters serve autoregressive ones, in the same engine run."""
        vlora = VLoRA(VLoRAConfig(max_batch_size=16))
        vlora.prepare_adapters([
            # A floor the video domain only meets alone, so fusion
            # rolls back and the QA domain lands in its own adapter.
            KnowledgeItem("vid-0", "video_classification", 0.9),
            KnowledgeItem("qa-0", "visual_qa", 0.7),
        ])
        headed = [s for s in vlora.adapter_specs if s.has_task_head]
        plain = [s for s in vlora.adapter_specs if not s.has_task_head]
        assert headed and plain
        reqs = [
            Request(adapter_id=headed[0].adapter_id, arrival_time=0.0,
                    input_tokens=256, output_tokens=1, use_task_head=True),
            Request(adapter_id=plain[0].adapter_id, arrival_time=0.0,
                    input_tokens=256, output_tokens=40),
        ]
        metrics = vlora.serve(reqs)
        assert metrics.num_completed == 2


class TestConservation:
    """Every submitted request completes exactly once with sane times."""

    @pytest.mark.parametrize("system", ["v-lora", "s-lora", "punica",
                                        "dlora", "merge-only",
                                        "unmerge-only"])
    def test_request_conservation_per_system(self, system):
        builder = SystemBuilder(num_adapters=4, max_batch_size=16)
        engine = builder.build(system)
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=6.0,
                               duration_s=8.0, seed=31)
        requests = wl.generate()
        engine.submit(requests)
        metrics = engine.run()
        assert metrics.num_completed == len(requests)
        ids = [r.request_id for r in metrics.records]
        assert len(set(ids)) == len(ids)
        for rec in metrics.records:
            assert rec.finish_time >= rec.first_token_time >= rec.arrival_time

    def test_video_and_retrieval_share_engine(self):
        builder = SystemBuilder(num_adapters=4, max_batch_size=16)
        engine = builder.build("v-lora")
        retrieval = RetrievalWorkload(builder.adapter_ids, rate_rps=3.0,
                                      duration_s=8.0, seed=1).generate()
        video = VideoAnalyticsWorkload(builder.adapter_ids, num_streams=1,
                                       duration_s=8.0, seed=1).generate()
        engine.submit(retrieval)
        engine.submit(video)
        metrics = engine.run()
        assert metrics.num_completed == len(retrieval) + len(video)

    def test_simulated_time_monotonic_in_records(self):
        builder = SystemBuilder(num_adapters=2, max_batch_size=8)
        engine = builder.build("v-lora")
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=4.0,
                               duration_s=6.0, seed=2)
        engine.submit(wl.generate())
        metrics = engine.run()
        assert engine.clock.now >= max(
            r.finish_time for r in metrics.records
        ) - 1e-9


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        def run():
            builder = SystemBuilder(num_adapters=4, jitter_seed=5)
            engine = builder.build("v-lora")
            wl = RetrievalWorkload(builder.adapter_ids, rate_rps=5.0,
                                   duration_s=8.0, seed=5)
            engine.submit(wl.generate())
            return engine.run().summary()

        a, b = run(), run()
        for key in a:
            assert a[key] == pytest.approx(b[key]), key

    def test_trace_replay_through_analysis(self, tmp_path):
        """workload -> trace file -> sweep -> comparison, end to end."""
        builder = SystemBuilder(num_adapters=4)
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=6.0,
                               duration_s=8.0, seed=77)
        path = tmp_path / "trace.jsonl"
        save_trace(path, wl.generate())

        runner = SweepRunner(builder, systems=("v-lora", "dlora"))
        sweep = runner.run("replay", ["trace"],
                           lambda _v, _s: load_trace(path))
        comparison = SystemComparison(sweep, reference="v-lora")
        assert comparison.row("dlora").mean_pct > 0
