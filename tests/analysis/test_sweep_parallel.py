"""Parallel sweep runner: identical results, table() indexing."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import SweepCell, SweepResult, SweepRunner
from repro.core.builder import SystemBuilder
from repro.runtime.metrics import MetricsCollector
from repro.runtime.request import reset_request_ids
from repro.workloads.retrieval import RetrievalWorkload


def _factory(value, system):
    builder = SystemBuilder(num_adapters=4)
    return RetrievalWorkload(
        builder.adapter_ids, rate_rps=float(value), duration_s=8.0,
        use_task_heads=(system == "v-lora"), seed=9,
    ).generate()


def _snapshot(result):
    return [
        (c.axis_value, c.system, c.metrics.summary(),
         sorted((r.request_id, r.first_token_time, r.finish_time)
                for r in c.metrics.records))
        for c in result.cells
    ]


class TestParallelSweep:
    def test_parallel_equals_serial_cell_for_cell(self):
        builder = SystemBuilder(num_adapters=4)
        runner = SweepRunner(builder, systems=("v-lora", "s-lora"))
        reset_request_ids()
        serial = runner.run("rate", [3.0, 6.0], _factory)
        reset_request_ids()
        parallel = runner.run("rate", [3.0, 6.0], _factory, parallel=2)
        assert _snapshot(serial) == _snapshot(parallel)

    def test_parallel_one_is_serial(self):
        builder = SystemBuilder(num_adapters=4)
        runner = SweepRunner(builder, systems=("v-lora",))
        reset_request_ids()
        a = runner.run("rate", [3.0], _factory, parallel=1)
        reset_request_ids()
        b = runner.run("rate", [3.0], _factory)
        assert _snapshot(a) == _snapshot(b)

    def test_fallback_on_broken_pool(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("no processes in this sandbox")

        monkeypatch.setattr(sweep_mod, "ProcessPoolExecutor", BrokenPool)
        # Force past auto-degrade so the broken pool is actually tried.
        monkeypatch.setattr(sweep_mod, "_effective_cpu_count", lambda: 4)
        builder = SystemBuilder(num_adapters=4)
        runner = SweepRunner(builder, systems=("v-lora",))
        reset_request_ids()
        fell_back = runner.run("rate", [3.0, 4.0, 5.0, 6.0], _factory,
                               parallel=4)
        assert fell_back.metadata["mode"] == "serial-fallback"
        monkeypatch.undo()
        reset_request_ids()
        serial = runner.run("rate", [3.0, 4.0, 5.0, 6.0], _factory)
        assert _snapshot(fell_back) == _snapshot(serial)

    def test_empty_workload_still_rejected(self):
        runner = SweepRunner(SystemBuilder(num_adapters=4),
                             systems=("v-lora",))
        with pytest.raises(ValueError, match="no requests"):
            runner.run("rate", [3.0], lambda v, s: [], parallel=2)


class TestAutoDegrade:
    """parallel=N quietly runs serial when a pool cannot win."""

    def _runner(self):
        return SweepRunner(SystemBuilder(num_adapters=4),
                           systems=("v-lora", "s-lora"))

    def test_single_cpu_degrades_to_serial(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_effective_cpu_count", lambda: 1)

        def no_pool(*a, **k):
            raise AssertionError("pool must not be created on 1 CPU")

        monkeypatch.setattr(sweep_mod, "ProcessPoolExecutor", no_pool)
        reset_request_ids()
        result = self._runner().run("rate", [3.0, 6.0], _factory, parallel=4)
        assert result.metadata["mode"] == "serial-degraded"
        assert result.metadata["degrade_reason"] == "cpu_count=1"
        assert result.metadata["requested_parallel"] == 4
        assert len(result.cells) == 4

    def test_tiny_grid_degrades_to_serial(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_effective_cpu_count", lambda: 8)

        def no_pool(*a, **k):
            raise AssertionError("pool must not be created for a tiny grid")

        monkeypatch.setattr(sweep_mod, "ProcessPoolExecutor", no_pool)
        reset_request_ids()
        result = self._runner().run("rate", [3.0], _factory, parallel=4)
        assert result.metadata["mode"] == "serial-degraded"
        assert "num_cells=2" in result.metadata["degrade_reason"]

    def test_degraded_results_equal_serial(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_effective_cpu_count", lambda: 1)
        reset_request_ids()
        degraded = self._runner().run("rate", [3.0, 6.0], _factory,
                                      parallel=4)
        reset_request_ids()
        serial = self._runner().run("rate", [3.0, 6.0], _factory)
        assert serial.metadata["mode"] == "serial"
        assert _snapshot(degraded) == _snapshot(serial)

    def test_serial_run_records_metadata(self):
        reset_request_ids()
        result = self._runner().run("rate", [3.0], _factory)
        assert result.metadata["mode"] == "serial"
        assert result.metadata["requested_parallel"] is None
        assert result.metadata["cpu_count"] >= 1


class TestTableIndex:
    def _result(self):
        result = SweepResult(axis_name="x", systems=["a", "b"])
        for value in (1, 2, 3):
            for system in ("a", "b"):
                m = MetricsCollector()
                m.iterations = value * (10 if system == "a" else 100)
                result.cells.append(SweepCell(value, system, m))
        return result

    def test_table_values(self):
        rows = self._result().table("iterations")
        assert rows == [[1, 10, 100], [2, 20, 200], [3, 30, 300]]

    def test_missing_cell_is_none(self):
        result = self._result()
        del result.cells[0]
        assert result.table("iterations")[0] == [1, None, 100]

    def test_duplicate_cell_first_wins(self):
        result = self._result()
        dup = MetricsCollector()
        dup.iterations = 999
        result.cells.append(SweepCell(1, "a", dup))
        assert result.table("iterations")[0] == [1, 10, 100]
