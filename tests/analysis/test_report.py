"""Tests for the results-report digester."""

import json

import pytest

from repro.analysis.report import build_report, load_results, render_report


def write(tmp_path, name, payload):
    with open(tmp_path / f"{name}.json", "w") as fh:
        json.dump(payload, fh)


class TestLoadResults:
    def test_loads_all_json(self, tmp_path):
        write(tmp_path, "a", {"x": 1})
        write(tmp_path, "b", {"y": 2})
        results = load_results(tmp_path)
        assert set(results) == {"a", "b"}

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "nope")

    def test_bad_json_reported(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(ValueError, match="bad.json"):
            load_results(tmp_path)


class TestDigesters:
    def test_known_experiment_gets_title(self, tmp_path):
        write(tmp_path, "fig07_mode_switch", {
            "dlora": {"switch_ms": 51.0},
            "v-lora": {"switch_ms": 5.6},
        })
        rows = build_report(load_results(tmp_path))
        assert rows[0][1] == "Fig 7: mode switch"
        assert "51.0" in rows[0][2] and "5.6" in rows[0][2]

    def test_table3_digester(self, tmp_path):
        write(tmp_path, "table3_multigpu", {
            "1": {"throughput_rps": 10.0},
            "2": {"throughput_rps": 20.0},
        })
        rows = build_report(load_results(tmp_path))
        assert "1 GPU(s)=10.0rps" in rows[0][2]

    def test_unknown_experiment_generic_digest(self, tmp_path):
        write(tmp_path, "something_new", {"alpha": 1, "beta": 2})
        rows = build_report(load_results(tmp_path))
        assert rows[0][1] == "something_new"
        assert "alpha" in rows[0][2]

    def test_malformed_known_payload_falls_back(self, tmp_path):
        write(tmp_path, "fig07_mode_switch", {"unexpected": True})
        rows = build_report(load_results(tmp_path))
        assert "unexpected" in rows[0][2]


class TestRender:
    def test_empty_dir_message(self, tmp_path):
        out = render_report(tmp_path)
        assert "no results" in out

    def test_full_render(self, tmp_path):
        write(tmp_path, "fig07_mode_switch", {
            "dlora": {"switch_ms": 51.0},
            "v-lora": {"switch_ms": 5.6},
        })
        out = render_report(tmp_path)
        assert "1 experiments" in out
        assert "results/fig07_mode_switch.json" in out

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main
        write(tmp_path, "fig07_mode_switch", {
            "dlora": {"switch_ms": 51.0},
            "v-lora": {"switch_ms": 5.6},
        })
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        assert "Fig 7" in capsys.readouterr().out

    def test_cli_report_missing_dir(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["report", "--results-dir", str(tmp_path / "zz")])
        assert rc == 2
