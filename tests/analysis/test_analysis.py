"""Tests for the sweep runner, comparisons, and text charts."""

import pytest

from repro.analysis import (
    SweepRunner,
    SystemComparison,
    bar_chart,
    line_chart,
)
from repro.analysis.compare import reduction_pct
from repro.core import SystemBuilder
from repro.workloads import RetrievalWorkload


@pytest.fixture(scope="module")
def small_sweep():
    builder = SystemBuilder(num_adapters=4)
    runner = SweepRunner(builder, systems=("v-lora", "dlora"))

    def factory(rate, system):
        return RetrievalWorkload(
            builder.adapter_ids, rate_rps=rate, duration_s=8.0,
            use_task_heads=(system == "v-lora"), seed=2,
        ).generate()

    return runner.run("rate_rps", [4.0, 10.0], factory)


class TestSweepRunner:
    def test_all_cells_present(self, small_sweep):
        assert len(small_sweep.cells) == 4

    def test_series_extraction(self, small_sweep):
        series = small_sweep.series("v-lora", "avg_token_latency_ms")
        assert set(series) == {4.0, 10.0}
        assert all(v > 0 for v in series.values())

    def test_latency_grows_with_rate(self, small_sweep):
        for system in ("v-lora", "dlora"):
            series = small_sweep.series(system, "mean_latency_s")
            assert series[10.0] > series[4.0]

    def test_table_rows(self, small_sweep):
        rows = small_sweep.table("avg_token_latency_ms")
        assert len(rows) == 2
        assert all(len(r) == 3 for r in rows)

    def test_unknown_metric_and_system(self, small_sweep):
        with pytest.raises(KeyError):
            small_sweep.series("v-lora", "nope")
        with pytest.raises(KeyError):
            small_sweep.series("punica", "mean_latency_s")

    def test_empty_factory_rejected(self):
        builder = SystemBuilder(num_adapters=2)
        runner = SweepRunner(builder, systems=("v-lora",))
        with pytest.raises(ValueError, match="no requests"):
            runner.run("x", [1], lambda v, s: [])

    def test_validation(self):
        builder = SystemBuilder(num_adapters=2)
        with pytest.raises(ValueError):
            SweepRunner(builder, systems=())
        runner = SweepRunner(builder, systems=("v-lora",))
        with pytest.raises(ValueError):
            runner.run("x", [], lambda v, s: [])


class TestComparison:
    def test_reduction_pct(self):
        assert reduction_pct(50.0, 100.0) == pytest.approx(50.0)
        assert reduction_pct(100.0, 50.0) == pytest.approx(-100.0)
        with pytest.raises(ValueError):
            reduction_pct(1.0, 0.0)

    def test_vlora_beats_dlora(self, small_sweep):
        cmp = SystemComparison(small_sweep, reference="v-lora")
        row = cmp.row("dlora")
        assert row.mean_pct > 0
        assert cmp.reference_wins_everywhere(tolerance_pct=1.0)
        assert "dlora" in cmp.summary()

    def test_band_format(self, small_sweep):
        band = SystemComparison(small_sweep).row("dlora").band()
        assert "%" in band and "-" in band

    def test_unknown_reference(self, small_sweep):
        with pytest.raises(KeyError):
            SystemComparison(small_sweep, reference="punica")

    def test_unknown_row(self, small_sweep):
        cmp = SystemComparison(small_sweep)
        with pytest.raises(KeyError):
            cmp.row("s-lora")


class TestTextPlots:
    def test_line_chart_renders_marks(self):
        chart = line_chart(
            {"a": {1: 1.0, 2: 2.0}, "b": {1: 2.0, 2: 1.0}},
            title="t", x_label="x", y_label="y",
        )
        assert "t" in chart
        assert "o" in chart and "x" in chart
        assert "o=a" in chart and "x=b" in chart

    def test_line_chart_flat_series(self):
        chart = line_chart({"flat": {0: 5.0, 1: 5.0}})
        assert "o" in chart

    def test_line_chart_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": {1: 1.0}}, width=4)

    def test_bar_chart_scales_and_refs(self):
        chart = bar_chart({"v-lora": 5.0, "dlora": 10.0},
                          reference="v-lora", unit="ms")
        assert "(ref)" in chart
        assert "2.00x" in chart

    def test_bar_chart_zero_and_validation(self):
        chart = bar_chart({"a": 0.0, "b": 1.0})
        assert "a" in chart
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})


class TestSaturationPoint:
    def test_finds_the_knee(self):
        from repro.analysis import saturation_point
        series = {2: 5.0, 6: 8.0, 10: 20.0, 14: 60.0}
        assert saturation_point(series) == 10

    def test_none_when_stable(self):
        from repro.analysis import saturation_point
        assert saturation_point({1: 5.0, 2: 6.0}) is None

    def test_validation(self):
        from repro.analysis import saturation_point
        import pytest
        with pytest.raises(ValueError):
            saturation_point({})
        with pytest.raises(ValueError):
            saturation_point({1: 1.0}, blowup=0.5)
        with pytest.raises(ValueError):
            saturation_point({1: 0.0})
