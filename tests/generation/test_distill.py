"""Tests for the small-model distillation pipeline (Fig. 9, left)."""

import numpy as np
import pytest

from repro.generation import (
    IMAGE_CLASSIFICATION,
    LoRATrainer,
    make_domain,
    train_small_model,
)
from repro.generation.distill import (
    distill_dataset,
    distillation_agreement,
    representative_inputs,
)


@pytest.fixture(scope="module")
def teacher():
    domain = make_domain(IMAGE_CLASSIFICATION, 0, n_train=160, n_test=64)
    return train_small_model(domain, steps=150), domain


class TestRepresentativeInputs:
    def test_shape(self):
        x = representative_inputs(IMAGE_CLASSIFICATION, 10)
        assert x.shape == (10, IMAGE_CLASSIFICATION.patches,
                           IMAGE_CLASSIFICATION.feature_dim)
        assert x.dtype == np.float32

    def test_seeded_determinism(self):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        a = representative_inputs(IMAGE_CLASSIFICATION, 5, rng1)
        b = representative_inputs(IMAGE_CLASSIFICATION, 5, rng2)
        np.testing.assert_allclose(a, b)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            representative_inputs(IMAGE_CLASSIFICATION, 0)


class TestDistillDataset:
    def test_labels_come_from_teacher(self, teacher):
        small, _ = teacher
        ds = distill_dataset(small, IMAGE_CLASSIFICATION, prompt_id=3,
                             name="distilled", n_train=64, n_test=48)
        assert ds.num_train == 64 and ds.num_test == 48
        assert ds.prompt_id == 3
        assert distillation_agreement(small, ds) == 1.0

    def test_custom_inputs(self, teacher):
        small, domain = teacher
        ds = distill_dataset(
            small, IMAGE_CLASSIFICATION, prompt_id=1, name="d",
            inputs=(domain.train_x[:32], domain.test_x[:16]),
        )
        assert ds.num_train == 32 and ds.num_test == 16
        # On the teacher's home distribution, distilled labels mostly
        # agree with ground truth.
        agreement = (ds.test_y == domain.test_y[:16]).mean()
        assert agreement > 0.8

    def test_bad_inputs_rejected(self, teacher):
        small, _ = teacher
        with pytest.raises(ValueError):
            distill_dataset(small, IMAGE_CLASSIFICATION, prompt_id=0,
                            name="d", inputs=(np.zeros((4, 8)),
                                              np.zeros((4, 8))))

    def test_distilled_knowledge_is_learnable(self, teacher, tinylmm_copy):
        """End-to-end Fig. 9: distill -> LoRA-train -> match the teacher."""
        small, domain = teacher
        ds = distill_dataset(
            small, IMAGE_CLASSIFICATION, prompt_id=domain.prompt_id,
            name="distilled",
            inputs=(domain.train_x, domain.test_x),
        )
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=70)
        trainer.train([ds])
        acc = trainer.evaluate([ds]).per_domain["distilled"]
        assert acc > 0.8
