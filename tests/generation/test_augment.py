"""Tests for the data-enhancement module (paper §3.1 future work)."""

import numpy as np
import pytest

from repro.generation import IMAGE_CLASSIFICATION, VIDEO_CLASSIFICATION, make_domain
from repro.generation.augment import (
    augment_domain,
    mixup,
    noise_jitter,
    videomix,
)

pytestmark = pytest.mark.slow


@pytest.fixture()
def domain():
    return make_domain(IMAGE_CLASSIFICATION, 0, n_train=48, n_test=16)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestMixup:
    def test_shapes_and_labels_preserved(self, domain, rng):
        x, y = mixup(domain.train_x, domain.train_y, rng)
        assert x.shape == domain.train_x.shape
        np.testing.assert_array_equal(y, domain.train_y)

    def test_outputs_are_convex_mixes(self, domain, rng):
        x, _ = mixup(domain.train_x, domain.train_y, rng)
        lo = np.minimum(domain.train_x.min(), x.min())
        hi = np.maximum(domain.train_x.max(), x.max())
        # Convexity: mixed values cannot exceed the original range.
        assert x.min() >= domain.train_x.min() - 1e-5
        assert x.max() <= domain.train_x.max() + 1e-5
        assert lo <= hi

    def test_validation(self, domain, rng):
        with pytest.raises(ValueError):
            mixup(domain.train_x, domain.train_y, rng, alpha=0.0)


class TestVideoMix:
    def test_head_frames_untouched(self, rng):
        d = make_domain(VIDEO_CLASSIFICATION, 0, n_train=24, n_test=8)
        x, y = videomix(d.train_x, d.train_y, rng, max_cut_fraction=0.4)
        patches = d.train_x.shape[1]
        head = patches - int(patches * 0.4)
        np.testing.assert_allclose(x[:, :head], d.train_x[:, :head])
        np.testing.assert_array_equal(y, d.train_y)

    def test_some_tails_spliced(self, rng):
        d = make_domain(VIDEO_CLASSIFICATION, 0, n_train=24, n_test=8)
        x, _ = videomix(d.train_x, d.train_y, rng)
        assert not np.allclose(x, d.train_x)

    def test_validation(self, domain, rng):
        with pytest.raises(ValueError):
            videomix(domain.train_x, domain.train_y, rng,
                     max_cut_fraction=0.8)


class TestNoiseAndWrapper:
    def test_noise_scale_zero_is_identity(self, domain, rng):
        x, _ = noise_jitter(domain.train_x, domain.train_y, rng, scale=0.0)
        np.testing.assert_allclose(x, domain.train_x)

    def test_augment_domain_grows_training_split(self, domain):
        out = augment_domain(domain, strategy="mixup", copies=2, seed=1)
        assert out.num_train == 3 * domain.num_train
        assert out.num_test == domain.num_test
        np.testing.assert_allclose(out.test_x, domain.test_x)
        assert out.name.endswith("+mixup")
        assert out.prompt_id == domain.prompt_id

    def test_augment_deterministic(self, domain):
        a = augment_domain(domain, strategy="noise", seed=3)
        b = augment_domain(domain, strategy="noise", seed=3)
        np.testing.assert_allclose(a.train_x, b.train_x)

    def test_unknown_strategy(self, domain):
        with pytest.raises(KeyError, match="mixup"):
            augment_domain(domain, strategy="cutout")

    def test_validation(self, domain):
        with pytest.raises(ValueError):
            augment_domain(domain, copies=0)

    def test_augmented_domain_trains(self, domain, tinylmm_copy):
        """End-to-end: the enlarged dataset drives LoRA training."""
        from repro.generation import LoRATrainer

        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=40)
        augmented = augment_domain(domain, strategy="mixup", copies=1)
        trainer.train([augmented])
        acc = trainer.evaluate([augmented]).per_domain[augmented.name]
        assert acc > 0.7
