"""Tests for the accuracy-aware knowledge-fusion algorithm (§4.2.1)."""

import pytest

from repro.generation import (
    FusionAccuracyOracle,
    KnowledgeFusion,
    KnowledgeItem,
    OracleEvaluator,
)
from repro.generation.fusion import AccuracyEvaluator


def items(family, count, req):
    return [
        KnowledgeItem(f"{family}-{i}", family, req) for i in range(count)
    ]


class TestKnowledgeItem:
    def test_requirement_bounds(self):
        with pytest.raises(ValueError):
            KnowledgeItem("x", "image_classification", 1.5)


class TestOracleFusion:
    def test_image_domains_pack_into_one_adapter(self):
        """Image classification fuses 6 domains above a 90% floor (Fig. 5)."""
        fusion = KnowledgeFusion(OracleEvaluator())
        result = fusion.fuse(items("image_classification", 6, 0.90))
        assert result.num_adapters == 1
        assert result.adapters[0].num_domains == 6
        assert not result.violations

    def test_video_domains_mostly_split(self):
        """Video classification cannot share adapters at a high floor."""
        fusion = KnowledgeFusion(OracleEvaluator())
        result = fusion.fuse(items("video_classification", 4, 0.90))
        assert result.num_adapters == 4

    def test_detection_lands_in_between(self):
        fusion = KnowledgeFusion(OracleEvaluator())
        img = fusion.fuse(items("image_classification", 6, 0.88)).num_adapters
        det = KnowledgeFusion(OracleEvaluator()).fuse(
            items("object_detection", 6, 0.88)
        ).num_adapters
        vid = KnowledgeFusion(OracleEvaluator()).fuse(
            items("video_classification", 6, 0.88)
        ).num_adapters
        assert img <= det <= vid
        assert img < vid

    def test_lower_requirement_fewer_adapters(self):
        loose = KnowledgeFusion(OracleEvaluator()).fuse(
            items("video_classification", 6, 0.30)
        )
        tight = KnowledgeFusion(OracleEvaluator()).fuse(
            items("video_classification", 6, 0.90)
        )
        assert loose.num_adapters <= tight.num_adapters

    def test_adapters_meet_requirements(self):
        result = KnowledgeFusion(OracleEvaluator()).fuse(
            items("object_detection", 5, 0.80)
        )
        for adapter in result.adapters:
            assert adapter.meets_requirements()

    def test_impossible_requirement_recorded_as_violation(self):
        result = KnowledgeFusion(OracleEvaluator()).fuse(
            items("video_classification", 2, 0.999)
        )
        assert result.violations
        assert result.num_adapters == 2  # best effort: one each

    def test_rollback_count(self):
        result = KnowledgeFusion(OracleEvaluator()).fuse(
            items("video_classification", 3, 0.90)
        )
        assert result.num_rollbacks == 2
        assert result.num_evaluations >= 3

    def test_mixed_families_pack_greedily(self):
        mixed = (
            items("image_classification", 3, 0.90)
            + items("video_classification", 2, 0.90)
        )
        result = KnowledgeFusion(OracleEvaluator()).fuse(mixed)
        # Greedy order: 3 images fuse; each video needs its own bin.
        assert result.num_adapters == 3
        assert result.adapters[0].num_domains == 3

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeFusion(OracleEvaluator()).fuse([])

    def test_adapter_ids_unique_and_prefixed(self):
        result = KnowledgeFusion(
            OracleEvaluator(), adapter_prefix="vl"
        ).fuse(items("video_classification", 3, 0.90))
        ids = [a.adapter_id for a in result.adapters]
        assert len(set(ids)) == len(ids)
        assert all(i.startswith("vl-") for i in ids)

    def test_mean_domains_per_adapter(self):
        result = KnowledgeFusion(OracleEvaluator()).fuse(
            items("image_classification", 4, 0.90)
        )
        assert result.mean_domains_per_adapter == pytest.approx(4.0)


class _FlakyEvaluator(AccuracyEvaluator):
    """Always reports failure; exercises the rollback path fully."""

    def __init__(self):
        self.began = 0

    def begin_adapter(self):
        self.began += 1

    def try_fuse(self, fused, new_item):
        value = 1.0 if not fused else 0.0
        return {i.name: value for i in (*fused, new_item)}

    def commit(self):
        pass

    def rollback(self):
        pass


def test_every_item_gets_its_own_adapter_in_worst_case():
    """§4.2.1: 'the worst case may generate one LoRA adapter per dataset'."""
    evaluator = _FlakyEvaluator()
    result = KnowledgeFusion(evaluator).fuse(
        items("image_classification", 5, 0.5)
    )
    assert result.num_adapters == 5
    assert evaluator.began == 5


class TestOracleEvaluatorProtocol:
    def test_commit_without_try_rejected(self):
        ev = OracleEvaluator()
        ev.begin_adapter()
        with pytest.raises(RuntimeError):
            ev.commit()

    def test_unknown_family_rejected(self):
        ev = OracleEvaluator(FusionAccuracyOracle())
        with pytest.raises(KeyError):
            ev.try_fuse([], KnowledgeItem("x", "poetry", 0.5))
