"""Tests for the calibrated fusion-accuracy oracle."""

import pytest
from hypothesis import given, strategies as st

from repro.generation import FusionAccuracyOracle
from repro.generation.oracle import DEFAULT_CURVES, FusionCurve


class TestFusionCurve:
    def test_solo_is_max(self):
        curve = FusionCurve(solo=0.95, slope=0.05)
        assert curve.accuracy(1) == pytest.approx(0.95)

    def test_monotone_decreasing(self):
        curve = FusionCurve(solo=0.95, slope=0.05, curvature=0.01)
        accs = [curve.accuracy(k) for k in range(1, 10)]
        assert all(a >= b for a, b in zip(accs, accs[1:]))

    def test_floor_respected(self):
        curve = FusionCurve(solo=0.9, slope=0.5, floor=0.2)
        assert curve.accuracy(50) == pytest.approx(0.2)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            FusionCurve(solo=0.9, slope=0.1).accuracy(0)


class TestOracle:
    def test_fig5_trend_ordering(self):
        """At 6 fused domains: image >> detection >> video (Fig. 5)."""
        oracle = FusionAccuracyOracle(jitter=0.0)
        img = oracle.accuracy("image_classification", 6)
        det = oracle.accuracy("object_detection", 6)
        vid = oracle.accuracy("video_classification", 6)
        assert img > 0.94          # paper: >95% retained
        assert vid < 0.75          # paper: remarkable decrease
        assert img > det > vid

    def test_jitter_is_deterministic_per_salt(self):
        oracle = FusionAccuracyOracle()
        a = oracle.accuracy("object_detection", 3, salt="d1")
        b = oracle.accuracy("object_detection", 3, salt="d1")
        c = oracle.accuracy("object_detection", 3, salt="d2")
        assert a == b
        assert a != c

    def test_jitter_bounded(self):
        oracle = FusionAccuracyOracle(jitter=0.01)
        base = FusionAccuracyOracle(jitter=0.0)
        for salt in ("a", "b", "c", "d"):
            diff = abs(
                oracle.accuracy("visual_qa", 2, salt=salt)
                - base.accuracy("visual_qa", 2)
            )
            assert diff <= 0.01 + 1e-9

    def test_unknown_family_lists_known(self):
        with pytest.raises(KeyError, match="image_classification"):
            FusionAccuracyOracle().accuracy("unknown", 1)

    def test_max_fusable(self):
        oracle = FusionAccuracyOracle()
        img = oracle.max_fusable("image_classification", 0.90)
        vid = oracle.max_fusable("video_classification", 0.90)
        assert img > vid >= 1

    def test_max_fusable_validation(self):
        with pytest.raises(ValueError):
            FusionAccuracyOracle().max_fusable("visual_qa", 1.5)

    @given(
        family=st.sampled_from(sorted(DEFAULT_CURVES)),
        k=st.integers(1, 20),
        salt=st.text(min_size=0, max_size=8),
    )
    def test_accuracy_always_a_probability(self, family, k, salt):
        acc = FusionAccuracyOracle().accuracy(family, k, salt=salt)
        assert 0.0 <= acc <= 1.0
