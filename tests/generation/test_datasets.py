"""Tests for the synthetic domain dataset generator."""

import numpy as np
import pytest

from repro.generation import (
    IMAGE_CLASSIFICATION,
    OBJECT_DETECTION,
    TASK_FAMILIES,
    VIDEO_CLASSIFICATION,
    make_domain,
    make_domains,
)
from repro.generation.datasets import (
    TaskFamily,
    family_prototypes,
    make_pretraining_mixture,
)


class TestTaskFamilies:
    def test_registry_covers_three_families(self):
        assert set(TASK_FAMILIES) == {
            "image_classification", "object_detection", "video_classification",
        }

    def test_interference_ordering(self):
        """Image < detection < video in conflict (the Fig. 5 mechanism)."""
        assert IMAGE_CLASSIFICATION.conflict_fraction == 0.0
        assert 0 < OBJECT_DETECTION.conflict_fraction < \
            VIDEO_CLASSIFICATION.conflict_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskFamily(name="x", conflict_fraction=1.5)
        with pytest.raises(ValueError):
            TaskFamily(name="x", num_classes=1)
        with pytest.raises(ValueError):
            TaskFamily(name="x", shift_rank=-1)


class TestPrototypes:
    def test_family_prototypes_orthonormal(self):
        protos = family_prototypes(IMAGE_CLASSIFICATION)
        gram = protos @ protos.T
        np.testing.assert_allclose(gram, np.eye(len(protos)), atol=1e-5)

    def test_prototypes_stable_across_calls(self):
        a = family_prototypes(VIDEO_CLASSIFICATION)
        b = family_prototypes(VIDEO_CLASSIFICATION)
        np.testing.assert_allclose(a, b)

    def test_families_have_distinct_prototypes(self):
        a = family_prototypes(IMAGE_CLASSIFICATION)
        b = family_prototypes(VIDEO_CLASSIFICATION)
        assert not np.allclose(a[:6], b[:6])


class TestMakeDomain:
    def test_shapes_and_labels(self):
        d = make_domain(IMAGE_CLASSIFICATION, 0, n_train=32, n_test=16)
        assert d.train_x.shape == (32, 8, 32)
        assert d.test_x.shape == (16, 8, 32)
        assert d.train_y.min() >= 0
        assert d.train_y.max() < IMAGE_CLASSIFICATION.num_classes

    def test_deterministic_per_index(self):
        a = make_domain(OBJECT_DETECTION, 3, n_train=8, n_test=8)
        b = make_domain(OBJECT_DETECTION, 3, n_train=8, n_test=8)
        np.testing.assert_allclose(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_distinct_indices_distinct_data(self):
        a = make_domain(OBJECT_DETECTION, 0, n_train=8, n_test=8)
        b = make_domain(OBJECT_DETECTION, 1, n_train=8, n_test=8)
        assert not np.allclose(a.train_x, b.train_x)

    def test_video_has_more_patches(self):
        d = make_domain(VIDEO_CLASSIFICATION, 0, n_train=4, n_test=4)
        assert d.train_x.shape[1] == VIDEO_CLASSIFICATION.patches == 12

    def test_video_labels_conflict_with_pretraining(self):
        """With conflict_fraction=0.75, most labels are permuted away
        from the canonical prototype index."""
        d = make_domain(VIDEO_CLASSIFICATION, 1, n_train=256, n_test=8)
        protos = family_prototypes(VIDEO_CLASSIFICATION)
        pooled = d.train_x.mean(axis=1)
        canonical = (pooled @ protos.T).argmax(axis=1)
        agreement = (canonical == d.train_y).mean()
        assert agreement < 0.6

    def test_image_labels_shifted_but_consistent(self):
        """Image domains are separable: same-label samples cluster."""
        d = make_domain(IMAGE_CLASSIFICATION, 0, n_train=256, n_test=8)
        pooled = d.train_x.mean(axis=1)
        centroids = np.stack([
            pooled[d.train_y == c].mean(axis=0)
            for c in range(IMAGE_CLASSIFICATION.num_classes)
        ])
        nearest = ((pooled[:, None, :] - centroids[None]) ** 2).sum(-1).argmin(1)
        assert (nearest == d.train_y).mean() > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            make_domain(IMAGE_CLASSIFICATION, 0, n_train=0)

    def test_prompt_defaults_to_index(self):
        d = make_domain(IMAGE_CLASSIFICATION, 5, n_train=4, n_test=4)
        assert d.prompt_id == 5
        assert (d.train_prompts() == 5).all()


class TestMakeDomains:
    def test_count_and_names(self):
        doms = make_domains(OBJECT_DETECTION, 4, n_train=4, n_test=4)
        assert len(doms) == 4
        assert len({d.name for d in doms}) == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            make_domains(OBJECT_DETECTION, 0)


class TestPretrainingMixture:
    def test_shapes_aligned(self):
        x, y, p = make_pretraining_mixture(domains_per_family=2,
                                           n_per_domain=8)
        assert x.shape[0] == y.shape[0] == p.shape[0]
        assert x.shape[1] == 12  # padded to the video patch count

    def test_mixture_covers_all_families(self):
        x, y, p = make_pretraining_mixture(domains_per_family=1,
                                           n_per_domain=4)
        assert x.shape[0] == 3 * 4
