"""Integration tests over real training: small models, LoRA, fusion.

These run the numpy substrate for real, at small scale; they encode the
paper's accuracy-side claims qualitatively (Figs. 3-5).
"""

import copy

import numpy as np
import pytest

from repro.generation import (
    IMAGE_CLASSIFICATION,
    VIDEO_CLASSIFICATION,
    KnowledgeFusion,
    KnowledgeItem,
    LoRATrainer,
    TrainerEvaluator,
    make_domain,
    make_domains,
    train_small_model,
)

pytestmark = pytest.mark.slow


@pytest.fixture()
def image_domain():
    return make_domain(IMAGE_CLASSIFICATION, 0, n_train=96, n_test=64)


class TestSmallModels:
    def test_learns_home_domain(self, image_domain):
        model = train_small_model(image_domain, steps=120)
        acc = model.accuracy(image_domain.test_x, image_domain.test_y)
        assert acc > 0.8

    def test_brittle_off_domain(self, image_domain):
        """Fig. 3's premise: small models do not transfer."""
        model = train_small_model(image_domain, steps=120)
        other = make_domain(IMAGE_CLASSIFICATION, 1, n_train=8, n_test=64)
        home = model.accuracy(image_domain.test_x, image_domain.test_y)
        away = model.accuracy(other.test_x, other.test_y)
        assert away < home

    def test_predict_distills_labels(self, image_domain):
        model = train_small_model(image_domain, steps=120)
        preds = model.predict(image_domain.test_x)
        assert preds.shape == (image_domain.num_test,)
        assert (preds == image_domain.test_y).mean() > 0.8

    def test_validation(self, image_domain):
        with pytest.raises(ValueError):
            train_small_model(image_domain, steps=0)


class TestLoRATrainer:
    def test_requires_installed_lora(self, pretrained_tinylmm):
        with pytest.raises(ValueError):
            LoRATrainer(copy.deepcopy(pretrained_tinylmm))

    def test_lora_gain_on_shifted_domain(self, tinylmm_copy, image_domain):
        """Fig. 4: fine-tuned LoRA lifts accuracy on the shifted domain."""
        model = tinylmm_copy
        x = image_domain.test_x
        pad = np.repeat(x[:, -1:, :], 12 - x.shape[1], axis=1)
        x12 = np.concatenate([x, pad], axis=1)
        base_acc = model.accuracy(x12, image_domain.test_prompts(),
                                  image_domain.test_y)
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=60)
        trainer.train([image_domain])
        tuned = trainer.evaluate([image_domain]).per_domain[image_domain.name]
        assert tuned > base_acc + 0.1
        assert tuned > 0.8

    def test_evaluate_reports_every_domain(self, tinylmm_copy):
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=20)
        doms = make_domains(IMAGE_CLASSIFICATION, 2, n_train=48, n_test=32)
        trainer.train(doms)
        result = trainer.evaluate(doms)
        assert set(result.per_domain) == {d.name for d in doms}
        assert 0 <= result.min_accuracy <= result.mean_accuracy <= 1

    def test_meets_requirements_helper(self, tinylmm_copy, image_domain):
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=60)
        trainer.train([image_domain])
        result = trainer.evaluate([image_domain])
        assert result.meets({image_domain.name: 0.5})
        assert not result.meets({image_domain.name: 1.01})

    def test_validation(self, tinylmm_copy):
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            LoRATrainer(model, lr=0.0)
        trainer = LoRATrainer(model)
        with pytest.raises(ValueError):
            trainer.train([])


class TestVideoInterference:
    def test_fusing_conflicting_domains_degrades(self, tinylmm_copy):
        """Fig. 5's video curve: two conflicting domains hurt each other."""
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=60)
        doms = make_domains(VIDEO_CLASSIFICATION, 2, n_train=96, n_test=64)
        trainer.train([doms[0]])
        solo = trainer.evaluate([doms[0]]).per_domain[doms[0].name]
        trainer.train(doms)
        fused = trainer.evaluate(doms).min_accuracy
        assert solo > 0.75
        assert fused < solo - 0.15


class TestTrainerEvaluatorFusion:
    def test_real_training_fusion_splits_video(self, tinylmm_copy):
        """End-to-end §4.2.1 on the real substrate: conflicting video
        domains trigger a rollback and a second adapter."""
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=50)
        doms = make_domains(VIDEO_CLASSIFICATION, 2, n_train=96, n_test=64)
        items = [
            KnowledgeItem(d.name, d.family.name, 0.7, dataset=d)
            for d in doms
        ]
        result = KnowledgeFusion(TrainerEvaluator(trainer)).fuse(items)
        assert result.num_adapters == 2
        assert result.num_rollbacks == 1

    def test_real_training_fusion_packs_images(self, tinylmm_copy):
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model, steps_per_domain=50)
        doms = make_domains(IMAGE_CLASSIFICATION, 2, n_train=96, n_test=64)
        items = [
            KnowledgeItem(d.name, d.family.name, 0.7, dataset=d)
            for d in doms
        ]
        result = KnowledgeFusion(TrainerEvaluator(trainer)).fuse(items)
        assert result.num_adapters == 1
        assert result.adapters[0].num_domains == 2

    def test_missing_dataset_rejected(self, tinylmm_copy):
        model = tinylmm_copy
        model.add_lora(4, rng=np.random.default_rng(0))
        trainer = LoRATrainer(model)
        evaluator = TrainerEvaluator(trainer)
        with pytest.raises(ValueError):
            evaluator.try_fuse(
                [], KnowledgeItem("x", "image_classification", 0.5)
            )
