"""Tests for vision-task profiles (§4.2.2, Appx. C)."""

import pytest

from repro.generation import TASK_PROFILES, get_task_profile
from repro.generation.heads import TaskProfile, application_tasks


class TestProfiles:
    def test_five_tasks_registered(self):
        assert set(TASK_PROFILES) == {
            "visual_qa", "image_caption", "referring_expression",
            "object_detection", "video_understanding",
        }

    def test_applications_partition_tasks(self):
        retrieval = {t.name for t in application_tasks("visual_retrieval")}
        video = {t.name for t in application_tasks("video_analytics")}
        assert retrieval | video == set(TASK_PROFILES)
        assert not retrieval & video

    def test_video_understanding_token_shape(self):
        """§6.2: 6 x 256 input tokens, 5-10 LM output tokens."""
        vu = get_task_profile("video_understanding")
        assert vu.input_tokens >= 6 * 256
        assert 5 <= vu.output_tokens_lm <= 10
        assert vu.images_per_request == 6

    def test_vqa_is_decode_heavy(self):
        """§6.2: VQA has ~256 input and 200+ output tokens."""
        vqa = get_task_profile("visual_qa")
        assert vqa.output_tokens_lm >= 200 * 0.9
        assert not vqa.supports_task_head

    def test_task_head_saves_rounds(self):
        vu = get_task_profile("video_understanding")
        assert vu.decode_rounds(use_task_head=True) == 1
        assert vu.decode_rounds(use_task_head=False) == vu.output_tokens_lm

    def test_lm_only_task_rejects_head(self):
        with pytest.raises(ValueError):
            get_task_profile("visual_qa").decode_rounds(use_task_head=True)

    def test_ucf101_classes_on_video_head(self):
        assert get_task_profile("video_understanding").num_classes == 101

    def test_unknown_task_lists_known(self):
        with pytest.raises(KeyError, match="visual_qa"):
            get_task_profile("ocr")

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            application_tasks("robotics")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            TaskProfile("x", "visual_retrieval", 0, 10)
        with pytest.raises(ValueError):
            TaskProfile("x", "nope", 10, 10)
