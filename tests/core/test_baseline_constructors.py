"""Tests for the named baseline constructors and module entry point."""

import subprocess
import sys

import pytest

from repro.baselines import (
    build_dlora,
    build_merge_only,
    build_punica,
    build_slora,
    build_unmerge_only,
    build_vlora,
)
from repro.kernels import ATMMOperator, EinsumOperator, PunicaOperator, SLoRAOperator
from repro.runtime import Request


class TestNamedConstructors:
    def test_each_builds_the_right_operator(self):
        assert isinstance(build_vlora(num_adapters=1).operator, ATMMOperator)
        assert isinstance(build_slora(num_adapters=1).operator, SLoRAOperator)
        assert isinstance(build_punica(num_adapters=1).operator,
                          PunicaOperator)
        assert isinstance(build_dlora(num_adapters=1).operator,
                          EinsumOperator)
        assert isinstance(build_merge_only(num_adapters=1).operator,
                          ATMMOperator)
        assert isinstance(build_unmerge_only(num_adapters=1).operator,
                          ATMMOperator)

    @pytest.mark.parametrize("builder", [
        build_vlora, build_slora, build_punica,
        build_dlora, build_merge_only, build_unmerge_only,
    ])
    def test_each_serves_a_request(self, builder):
        engine = builder(num_adapters=2)
        engine.submit([Request(adapter_id="lora-0", arrival_time=0.0,
                               input_tokens=64, output_tokens=2)])
        metrics = engine.run()
        assert metrics.num_completed == 1

    def test_kwargs_forwarded(self):
        engine = build_vlora(num_adapters=3, max_batch_size=4)
        assert engine.config.max_batch_size == 4
        assert engine.adapters.num_adapters == 3


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "systems"],
            capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0
        assert "v-lora" in out.stdout

    def test_bad_command_fails(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True, text=True, timeout=120,
        )
        assert out.returncode != 0
