"""Tests for the system builder and the V-LoRA end-to-end facade."""

import pytest

from repro import (
    SYSTEM_NAMES,
    KnowledgeItem,
    RetrievalWorkload,
    SystemBuilder,
    VLoRA,
    VLoRAConfig,
    build_engine,
)
from repro.kernels import ATMMOperator, EinsumOperator, PunicaOperator, SLoRAOperator
from repro.runtime.scheduler import (
    DLoRAPolicy,
    MergedOnlyPolicy,
    UnmergedOnlyPolicy,
    VLoRAPolicy,
)
from repro.runtime.switcher import DLoRASwitcher, SwiftSwitcher


class TestSystemBuilder:
    def test_every_system_builds(self):
        builder = SystemBuilder(num_adapters=2)
        for name in SYSTEM_NAMES:
            engine = builder.build(name)
            assert engine.adapters.num_adapters == 2

    def test_part_matrix(self):
        builder = SystemBuilder(num_adapters=2)
        vlora = builder.build("v-lora")
        assert isinstance(vlora.operator, ATMMOperator)
        assert isinstance(vlora.policy, VLoRAPolicy)
        assert isinstance(vlora.switcher, SwiftSwitcher)
        slora = builder.build("s-lora")
        assert isinstance(slora.operator, SLoRAOperator)
        assert isinstance(slora.policy, UnmergedOnlyPolicy)
        punica = builder.build("punica")
        assert isinstance(punica.operator, PunicaOperator)
        assert not punica.config.batch_prefills
        dlora = builder.build("dlora")
        assert isinstance(dlora.operator, EinsumOperator)
        assert isinstance(dlora.policy, DLoRAPolicy)
        assert isinstance(dlora.switcher, DLoRASwitcher)
        merge_only = builder.build("merge-only")
        assert isinstance(merge_only.policy, MergedOnlyPolicy)

    def test_prefix_reuse_only_for_vlora(self):
        builder = SystemBuilder(num_adapters=2)
        assert builder.build("v-lora").config.enable_prefix_reuse
        assert not builder.build("s-lora").config.enable_prefix_reuse

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            SystemBuilder(num_adapters=1).build("vllm")

    def test_custom_adapter_specs_override_count(self):
        from repro.models import QWEN_VL_7B, LoRAAdapterSpec
        specs = [LoRAAdapterSpec(f"x{i}", QWEN_VL_7B) for i in range(3)]
        builder = SystemBuilder(num_adapters=99, adapter_specs=specs)
        assert builder.num_adapters == 3
        assert builder.adapter_ids == ["x0", "x1", "x2"]

    def test_build_engine_shortcut(self):
        engine = build_engine("v-lora", num_adapters=2)
        assert engine.adapters.num_adapters == 2


class TestVLoRAFacade:
    @pytest.fixture()
    def items(self):
        return (
            [KnowledgeItem(f"img-{i}", "image_classification", 0.9)
             for i in range(4)]
            + [KnowledgeItem(f"vid-{i}", "video_classification", 0.90)
               for i in range(2)]
        )

    def test_prepare_adapters_packs_knowledge(self, items):
        vlora = VLoRA()
        result = vlora.prepare_adapters(items)
        # 4 images fuse into 1 adapter; each video domain gets its own.
        assert result.num_adapters == 3
        assert len(vlora.adapter_ids) == 3

    def test_task_heads_bundled_for_pure_adapters(self, items):
        vlora = VLoRA()
        vlora.prepare_adapters(items)
        specs = {s.adapter_id: s for s in vlora.adapter_specs}
        fused = vlora.fusion_result.adapters
        for adapter in fused:
            families = {i.family_name for i in adapter.items}
            spec = specs[adapter.adapter_id]
            if families == {"video_classification"}:
                assert spec.task_head_classes == 101
            if families == {"image_classification"}:
                assert spec.task_head_classes == 64

    def test_serve_roundtrip(self, items):
        vlora = VLoRA(VLoRAConfig(max_batch_size=16))
        vlora.prepare_adapters(items)
        wl = RetrievalWorkload(vlora.adapter_ids, rate_rps=2.0,
                               duration_s=8.0, seed=9)
        metrics = vlora.serve(wl.generate())
        assert metrics.num_completed > 0
        assert metrics.avg_token_latency() > 0

    def test_engine_rebuilt_after_new_adapters(self, items):
        vlora = VLoRA()
        vlora.prepare_adapters(items)
        first = vlora.engine()
        vlora.prepare_adapters(items[:2])
        assert vlora.engine() is not first

    def test_register_adapters_directly(self):
        from repro.models import QWEN_VL_7B, LoRAAdapterSpec
        vlora = VLoRA()
        vlora.register_adapters([LoRAAdapterSpec("det", QWEN_VL_7B)])
        assert vlora.adapter_ids == ["det"]
        with pytest.raises(ValueError):
            vlora.register_adapters([])

    def test_accessors_guarded_before_prepare(self):
        vlora = VLoRA()
        with pytest.raises(RuntimeError):
            vlora.adapter_specs
        with pytest.raises(RuntimeError):
            vlora.fusion_result

    def test_resolve_adapter_routing(self, items):
        vlora = VLoRA()
        vlora.prepare_adapters(items)
        routing = {"visual_qa": vlora.adapter_ids[0]}
        assert vlora.resolve_adapter("visual_qa", routing) == \
            vlora.adapter_ids[0]
        with pytest.raises(KeyError):
            vlora.resolve_adapter("visual_qa", {})
        with pytest.raises(KeyError):
            vlora.resolve_adapter("ocr", routing)
