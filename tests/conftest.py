"""Shared fixtures.

Expensive substrates (the pretrained TinyLMM, the ATMM tiling table) are
session-scoped so the suite stays fast; tests must not mutate them
in-place (deep-copy first, as the fusion tests do).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.hardware import A100_80GB
from repro.kernels import ATMMOperator, GemmCostModel


@pytest.fixture(autouse=True)
def _fresh_request_ids():
    """Reset the global request-id counter before every test.

    Without this, request ids depend on how many requests earlier tests
    created (import-order history), which makes id-sensitive assertions
    and cross-test reproducibility flaky.
    """
    from repro.runtime.request import reset_request_ids

    reset_request_ids()
    yield


@pytest.fixture(scope="session")
def gpu():
    return A100_80GB


@pytest.fixture(scope="session")
def cost_model(gpu):
    return GemmCostModel(gpu)


@pytest.fixture(scope="session")
def atmm(cost_model):
    return ATMMOperator(cost_model)


@pytest.fixture(scope="session")
def pretrained_tinylmm():
    """A small pretrained TinyLMM shared (read-only) across tests."""
    from repro.generation import pretrain_base
    from repro.nn import TinyLMMConfig

    config = TinyLMMConfig(max_patches=12)
    return pretrain_base(config, steps=120, seed=7)


@pytest.fixture()
def tinylmm_copy(pretrained_tinylmm):
    """A mutable deep copy of the pretrained model for one test."""
    return copy.deepcopy(pretrained_tinylmm)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
