"""Tests for the memory hierarchy and transfer models."""

import pytest

from repro.hardware import A100_80GB, HostLink, MemoryHierarchy, TransferModel
from repro.models import QWEN_VL_7B, LoRAAdapterSpec
from repro.models.zoo import SMALL_MODEL_INIT_S_PER_MB, SMALL_MODELS


class TestHostLink:
    def test_zero_bytes_is_free(self):
        assert HostLink(25.0).transfer_seconds(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            HostLink(25.0).transfer_seconds(-1)

    def test_latency_plus_bandwidth(self):
        link = HostLink(bandwidth_gbps=25.0, latency_us=10.0)
        t = link.transfer_seconds(25_000_000_000)  # 25 GB
        assert t == pytest.approx(1.0 + 10e-6)

    def test_monotone_in_size(self):
        link = HostLink(25.0)
        assert link.transfer_seconds(1 << 20) < link.transfer_seconds(1 << 24)


class TestMemoryHierarchy:
    def test_smem_double_buffering_halves_capacity(self):
        hier = MemoryHierarchy(A100_80GB)
        cap = A100_80GB.shared_mem_per_sm_bytes
        assert hier.smem_fits(cap // 2, double_buffered=True)
        assert not hier.smem_fits(cap // 2 + 1, double_buffered=True)
        assert hier.smem_fits(cap, double_buffered=False)

    def test_regfile_scales_with_warps(self):
        hier = MemoryHierarchy(A100_80GB)
        per_warp = A100_80GB.register_file_per_sm_bytes // 8
        assert hier.regfile_fits(per_warp, 4, double_buffered=False)
        assert not hier.regfile_fits(per_warp, 16, double_buffered=False)

    def test_hbm_fits_bounds(self):
        hier = MemoryHierarchy(A100_80GB)
        assert hier.hbm_fits(A100_80GB.hbm_capacity_bytes)
        assert not hier.hbm_fits(A100_80GB.hbm_capacity_bytes + 1)
        assert not hier.hbm_fits(-1)


class TestTransferModel:
    """§3.1: adapter swap ~15 ms; YOLO ~110 ms; OSCAR ~520 ms."""

    @pytest.fixture()
    def transfer(self):
        return TransferModel(A100_80GB)

    def test_adapter_swap_near_paper(self, transfer):
        spec = LoRAAdapterSpec("a", QWEN_VL_7B)
        t = transfer.swap_seconds(spec.ab_bytes)
        assert 0.010 < t < 0.025  # paper: 15 ms

    def test_yolo_swap_near_paper(self, transfer):
        yolo = SMALL_MODELS["YOLO"]
        t = transfer.swap_seconds(yolo.size_bytes) \
            + yolo.size_mb * SMALL_MODEL_INIT_S_PER_MB
        assert 0.08 < t < 0.15  # paper: 110 ms

    def test_oscar_swap_near_paper(self, transfer):
        oscar = SMALL_MODELS["OSCAR"]
        t = transfer.swap_seconds(oscar.size_bytes) \
            + oscar.size_mb * SMALL_MODEL_INIT_S_PER_MB
        assert 0.4 < t < 0.65  # paper: 520 ms

    def test_adapter_swap_beats_small_models(self, transfer):
        adapter = transfer.swap_seconds(LoRAAdapterSpec("a", QWEN_VL_7B).ab_bytes)
        yolo = SMALL_MODELS["YOLO"]
        yolo_t = transfer.swap_seconds(yolo.size_bytes) \
            + yolo.size_mb * SMALL_MODEL_INIT_S_PER_MB
        assert adapter < 0.25 * yolo_t  # paper: saves 86% vs YOLO

    def test_async_overlap_hides_wire_time(self, transfer):
        nbytes = 500_000_000
        sync = transfer.swap_seconds(nbytes, async_overlap=0.0)
        hidden = transfer.swap_seconds(nbytes, async_overlap=1.0)
        assert hidden < sync
        assert hidden == pytest.approx(TransferModel.SWAP_SOFTWARE_OVERHEAD_S)

    def test_async_overlap_bounds(self, transfer):
        with pytest.raises(ValueError):
            transfer.swap_seconds(100, async_overlap=1.5)

    def test_delta_w_swap_far_slower_than_ab(self, transfer):
        """§4.4.1: swapping materialized ΔW is prohibitive."""
        spec = LoRAAdapterSpec("a", QWEN_VL_7B)
        assert transfer.swap_seconds(spec.delta_w_bytes) > \
            3 * transfer.swap_seconds(spec.ab_bytes)
