"""Tests for GPU specs and derived quantities."""

import pytest

from repro.hardware import A10, A100_80GB, H100_80GB, GPUSpec, get_gpu, list_gpus


class TestGPUSpec:
    def test_a100_headline_numbers(self):
        assert A100_80GB.num_sms == 108
        assert A100_80GB.tensor_tflops_fp16 == 312.0
        assert A100_80GB.hbm_capacity_gb == 80.0

    def test_derived_units(self):
        assert A100_80GB.tensor_flops == pytest.approx(312e12)
        assert A100_80GB.hbm_bytes_per_s == pytest.approx(2039e9)
        assert A100_80GB.hbm_capacity_bytes == 80 * (1 << 30)
        assert A100_80GB.shared_mem_per_sm_bytes == 164 * 1024

    def test_flops_per_sm_splits_evenly(self):
        total = A100_80GB.flops_per_sm(tensor=True) * A100_80GB.num_sms
        assert total == pytest.approx(A100_80GB.tensor_flops)

    def test_cuda_cores_slower_than_tensor(self):
        for spec in (A100_80GB, A10, H100_80GB):
            assert spec.cuda_flops < spec.tensor_flops

    def test_invalid_sm_count_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(name="bad", num_sms=0, sm_clock_ghz=1.0,
                    tensor_tflops_fp16=1.0, cuda_tflops_fp16=1.0,
                    hbm_bandwidth_gbps=100.0, hbm_capacity_gb=8.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(name="bad", num_sms=10, sm_clock_ghz=1.0,
                    tensor_tflops_fp16=1.0, cuda_tflops_fp16=1.0,
                    hbm_bandwidth_gbps=-1.0, hbm_capacity_gb=8.0)


class TestRegistry:
    def test_lookup_known(self):
        assert get_gpu("A100-80GB") is A100_80GB

    def test_lookup_unknown_names_alternatives(self):
        with pytest.raises(KeyError, match="A100-80GB"):
            get_gpu("B200")

    def test_list_is_sorted_and_complete(self):
        names = list_gpus()
        assert names == sorted(names)
        assert "A100-80GB" in names and "H100-80GB" in names
