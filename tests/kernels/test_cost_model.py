"""Tests for the tiled-GEMM cost model, including Table 1's matrix."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import A100_80GB, H100_80GB
from repro.kernels import (
    CONFIG_1,
    CONFIG_2,
    PUNICA_CONFIG,
    GemmCostModel,
    GemmShape,
    GroupedGemm,
)

INPUT_1 = GemmShape(256, 4096, 32)     # Table 1 Input 1
INPUT_2 = GemmShape(8192, 4096, 128)   # Table 1 Input 2


@pytest.fixture(scope="module")
def cm():
    return GemmCostModel(A100_80GB)


class TestTable1:
    """The paper's Table 1 qualitative matrix must reproduce."""

    def test_input1_config1_beats_punica(self, cm):
        assert cm.gemm_seconds(INPUT_1, CONFIG_1) < \
            cm.gemm_seconds(INPUT_1, PUNICA_CONFIG)

    def test_input1_config2_is_worst(self, cm):
        """Config 2's big tiles under-utilize SMs on the small input."""
        lat2 = cm.gemm_seconds(INPUT_1, CONFIG_2)
        assert lat2 > cm.gemm_seconds(INPUT_1, CONFIG_1)
        assert lat2 > cm.gemm_seconds(INPUT_1, PUNICA_CONFIG)

    def test_input2_config2_is_best(self, cm):
        lat2 = cm.gemm_seconds(INPUT_2, CONFIG_2)
        assert lat2 < cm.gemm_seconds(INPUT_2, CONFIG_1)
        assert lat2 < cm.gemm_seconds(INPUT_2, PUNICA_CONFIG)

    def test_input2_punica_is_worst(self, cm):
        """Punica's small tiles flood global memory on the large input."""
        latp = cm.gemm_seconds(INPUT_2, PUNICA_CONFIG)
        assert latp > cm.gemm_seconds(INPUT_2, CONFIG_1)
        assert latp > cm.gemm_seconds(INPUT_2, CONFIG_2)

    def test_adaptive_gap_is_meaningful(self, cm):
        """Table 1 reports up to 1.9x between configs; require >= 1.5x."""
        lats = [cm.gemm_seconds(INPUT_2, c)
                for c in (PUNICA_CONFIG, CONFIG_1, CONFIG_2)]
        assert max(lats) / min(lats) > 1.5


class TestMechanisms:
    def test_sm_utilization_wave_quantization(self, cm):
        assert cm.sm_utilization(108) == pytest.approx(1.0)
        assert cm.sm_utilization(54) == pytest.approx(0.5)
        # 109 blocks -> 2 waves, second nearly empty.
        assert cm.sm_utilization(109) == pytest.approx(109 / 216)

    def test_sm_utilization_rejects_zero(self, cm):
        with pytest.raises(ValueError):
            cm.sm_utilization(0)

    def test_warp_efficiency_saturates(self, cm):
        assert cm.warp_efficiency(CONFIG_2) == 1.0  # 4 warps
        assert cm.warp_efficiency(PUNICA_CONFIG) < \
            cm.warp_efficiency(CONFIG_1)            # 1 warp < 2 warps

    def test_num_blocks_includes_split_k(self, cm):
        from repro.kernels import SLORA_CONFIG
        no_split = cm.num_blocks(INPUT_1, PUNICA_CONFIG)
        shape = GemmShape(16, 4096, 16)
        assert cm.num_blocks(shape, SLORA_CONFIG) == SLORA_CONFIG.split_k
        assert no_split == 16

    def test_latency_scales_with_problem_size(self, cm):
        small = cm.gemm_seconds(GemmShape(128, 4096, 64), CONFIG_1)
        large = cm.gemm_seconds(GemmShape(8192, 4096, 64), CONFIG_1)
        assert large > small

    def test_launch_overhead_linear(self, cm):
        assert cm.launch_seconds(3) == pytest.approx(3 * cm.launch_seconds(1))
        with pytest.raises(ValueError):
            cm.launch_seconds(-1)

    def test_faster_gpu_is_faster(self):
        a100 = GemmCostModel(A100_80GB)
        h100 = GemmCostModel(H100_80GB)
        shape = GemmShape(4096, 4096, 128)
        assert h100.gemm_seconds(shape, CONFIG_2) < \
            a100.gemm_seconds(shape, CONFIG_2)

    def test_elementwise_memory_bound(self, cm):
        one_gb = cm.elementwise_seconds(1 << 30)
        assert one_gb == pytest.approx(
            (1 << 30) / (A100_80GB.hbm_bytes_per_s * cm.mem_efficiency)
        )
        with pytest.raises(ValueError):
            cm.elementwise_seconds(-1)


class TestGroupedAndBatched:
    def test_grouped_beats_per_problem_launches(self, cm):
        problems = [GemmShape(64, 4096, 64) for _ in range(8)]
        grouped = GroupedGemm.of(problems)
        one_launch = cm.grouped_seconds(grouped, CONFIG_1)
        many = sum(cm.gemm_with_launch(p, CONFIG_1) for p in problems)
        assert one_launch < many

    def test_padded_batch_pays_for_heterogeneity(self, cm):
        hetero = GroupedGemm.of(
            [GemmShape(64, 4096, 64), GemmShape(1024, 4096, 64)]
        )
        grouped = cm.grouped_seconds(hetero, CONFIG_1)
        padded = cm.batched_padded_seconds(hetero, CONFIG_1)
        assert padded > grouped

    def test_uniform_batch_padding_is_cheap(self, cm):
        uniform = GroupedGemm.of([GemmShape(512, 4096, 64)] * 4)
        grouped = cm.grouped_seconds(uniform, CONFIG_1)
        padded = cm.batched_padded_seconds(uniform, CONFIG_1)
        assert padded == pytest.approx(grouped, rel=0.25)

    def test_extra_launches_cost(self, cm):
        g = GroupedGemm.of([GemmShape(64, 4096, 64)])
        base = cm.batched_padded_seconds(g, CONFIG_1, extra_launches=0)
        extra = cm.batched_padded_seconds(g, CONFIG_1, extra_launches=3)
        assert extra == pytest.approx(base + cm.launch_seconds(3))


class TestBreakdown:
    def test_components_add_up(self, cm):
        b = cm.breakdown(INPUT_1, PUNICA_CONFIG)
        expected = max(b["compute_seconds"], b["memory_seconds"]) \
            + cm.overlap_residual * min(b["compute_seconds"],
                                        b["memory_seconds"])
        assert b["total_seconds"] == pytest.approx(expected)

    def test_padding_waste_for_narrow_n(self, cm):
        """Punica's 64-wide N tile wastes half the flops on N=32."""
        b = cm.breakdown(INPUT_1, PUNICA_CONFIG)
        assert b["padding_waste"] == pytest.approx(0.5)
        assert b["useful_flops"] == INPUT_1.flops

    def test_bound_classification(self, cm):
        small = cm.breakdown(GemmShape(16, 4096, 16), CONFIG_1)
        assert small["bound"] in ("compute", "memory")
        big = cm.breakdown(GemmShape(8192, 4096, 4096), CONFIG_2)
        assert big["sm_utilization"] > small["sm_utilization"]

    def test_waves_consistent_with_blocks(self, cm):
        b = cm.breakdown(INPUT_2, PUNICA_CONFIG)
        assert b["waves"] == -(-b["blocks"] // A100_80GB.num_sms)


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(1, 8192),
    n=st.sampled_from([16, 32, 64, 128]),
    cfg=st.sampled_from([PUNICA_CONFIG, CONFIG_1, CONFIG_2]),
)
def test_latency_always_positive_and_finite(m, n, cfg):
    cm = GemmCostModel(A100_80GB)
    lat = cm.gemm_seconds(GemmShape(m, 4096, n), cfg)
    assert 0 < lat < 10.0


@settings(max_examples=30, deadline=None)
@given(m=st.integers(1, 4096), cfg=st.sampled_from([CONFIG_1, CONFIG_2]))
def test_latency_monotone_in_m_at_tile_boundaries(m, cfg):
    """Adding a full tile row of work never makes the kernel faster."""
    cm = GemmCostModel(A100_80GB)
    shape = GemmShape(m, 4096, 64)
    bigger = GemmShape(m + cfg.bm * 128, 4096, 64)
    assert cm.gemm_seconds(bigger, cfg) >= cm.gemm_seconds(shape, cfg)
