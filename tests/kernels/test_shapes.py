"""Tests for GEMM shape containers."""

import pytest
from hypothesis import given, strategies as st

from repro.kernels import GemmShape, GroupedGemm, lora_gemm_shapes

dims = st.integers(min_value=1, max_value=4096)


class TestGemmShape:
    def test_flops_counts_multiply_adds(self):
        assert GemmShape(2, 3, 4).flops == 2 * 2 * 3 * 4

    def test_byte_accounting(self):
        s = GemmShape(4, 8, 2)
        assert s.input_bytes_fp16 == 2 * (4 * 8 + 8 * 2)
        assert s.output_bytes_fp16 == 2 * 4 * 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)
        with pytest.raises(ValueError):
            GemmShape(1, -2, 1)

    def test_padding_up(self):
        assert GemmShape(3, 5, 7).padded_to(8, 8) == GemmShape(8, 5, 8)

    def test_padding_down_rejected(self):
        with pytest.raises(ValueError):
            GemmShape(8, 5, 8).padded_to(4, 8)

    @given(m=dims, k=dims, n=dims)
    def test_flops_positive_and_consistent(self, m, k, n):
        s = GemmShape(m, k, n)
        assert s.flops == 2 * m * k * n
        assert s.input_bytes_fp16 > 0


class TestGroupedGemm:
    def test_requires_problems(self):
        with pytest.raises(ValueError):
            GroupedGemm(())

    def test_aggregates(self):
        g = GroupedGemm.of([GemmShape(2, 4, 8), GemmShape(16, 4, 2)])
        assert g.num_groups == 2
        assert g.max_m == 16
        assert g.max_n == 8
        assert g.total_flops == GemmShape(2, 4, 8).flops + GemmShape(16, 4, 2).flops

    def test_padded_batch_is_uniform_and_never_smaller(self):
        g = GroupedGemm.of([GemmShape(2, 4, 8), GemmShape(16, 4, 2)])
        padded = g.padded_batch()
        assert all(p.m == 16 and p.n == 8 for p in padded.problems)
        assert padded.total_flops >= g.total_flops

    @given(st.lists(st.tuples(dims, dims), min_size=1, max_size=8))
    def test_padded_batch_flops_dominate(self, mns):
        g = GroupedGemm.of([GemmShape(m, 64, n) for m, n in mns])
        assert g.padded_batch().total_flops >= g.total_flops


class TestLoraGemmShapes:
    def test_shrink_expand_shapes(self):
        shrink, expand = lora_gemm_shapes([10, 20], 4096, [8, 16])
        assert shrink.problems == (GemmShape(10, 4096, 8), GemmShape(20, 4096, 16))
        assert expand.problems == (GemmShape(10, 8, 4096), GemmShape(20, 16, 4096))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            lora_gemm_shapes([10], 4096, [8, 16])
        with pytest.raises(ValueError):
            lora_gemm_shapes([], 4096, [])

    @given(
        st.lists(st.integers(1, 2048), min_size=1, max_size=6),
        st.integers(1, 8),
    )
    def test_shrink_expand_flops_equal(self, tokens, rank_pow):
        """x@A and (xA)@B move the same number of multiply-adds."""
        rank = 2 ** rank_pow
        shrink, expand = lora_gemm_shapes(tokens, 1024, [rank] * len(tokens))
        assert shrink.total_flops == expand.total_flops
