"""Tests for ATMM and the baseline LoRA-batching operators (§6.3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import A100_80GB
from repro.kernels import (
    ATMMOperator,
    EinsumOperator,
    GemmCostModel,
    PunicaOperator,
    SLoRAOperator,
    make_operator,
)

D = 4096
PREFILL = ([1024, 512, 768, 256], [64, 64, 64, 64])
DECODE = ([1] * 8, [64] * 8)


@pytest.fixture(scope="module")
def ops():
    cm = GemmCostModel(A100_80GB)
    return {
        "atmm": ATMMOperator(cm),
        "slora": SLoRAOperator(cm),
        "punica": PunicaOperator(cm),
        "dlora": EinsumOperator(cm),
    }


class TestFactory:
    def test_names_resolve(self):
        for name, cls in [
            ("atmm", ATMMOperator), ("v-lora", ATMMOperator),
            ("s-lora", SLoRAOperator), ("punica", PunicaOperator),
            ("dlora", EinsumOperator), ("einsum", EinsumOperator),
        ]:
            assert isinstance(make_operator(name, A100_80GB), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            make_operator("cublas", A100_80GB)


class TestValidation:
    def test_empty_batch_rejected(self, ops):
        with pytest.raises(ValueError):
            ops["atmm"].pair_seconds([], [], D)

    def test_misaligned_rejected(self, ops):
        with pytest.raises(ValueError):
            ops["atmm"].pair_seconds([1, 2], [64], D)

    def test_nonpositive_tokens_rejected(self, ops):
        with pytest.raises(ValueError):
            ops["atmm"].pair_seconds([0], [64], D)


class TestRelativePerformance:
    """Fig. 17's qualitative claims."""

    def test_atmm_fastest_at_prefill(self, ops):
        t = {k: op.pair_seconds(*PREFILL, D) for k, op in ops.items()}
        assert t["atmm"] == min(t.values())

    def test_atmm_beats_slora_clearly_at_prefill(self, ops):
        """Fig. 17: 2.7x average speedup vs S-LoRA (prefill-heavy)."""
        ratio = ops["slora"].pair_seconds(*PREFILL, D) / \
            ops["atmm"].pair_seconds(*PREFILL, D)
        assert ratio > 2.0

    def test_decode_slora_close_to_atmm(self, ops):
        """Fig. 17 left: ATMM ~ S-LoRA at decode shapes."""
        a = ops["atmm"].layer_seconds(*DECODE, D)
        s = ops["slora"].layer_seconds(*DECODE, D)
        assert s < 3.0 * a

    def test_decode_dlora_much_slower(self, ops):
        """Fig. 17 left: Einsum 4.5x slower than ATMM at decode."""
        a = ops["atmm"].pair_seconds(*DECODE, D)
        d = ops["dlora"].pair_seconds(*DECODE, D)
        assert d > 3.0 * a

    def test_dlora_pays_for_heterogeneity(self, ops):
        hetero = ops["dlora"].pair_seconds([64, 1024], [64, 64], D)
        uniform = ops["dlora"].pair_seconds([1024, 1024], [64, 64], D)
        # Padding makes the heterogeneous batch cost as much as uniform.
        assert hetero == pytest.approx(uniform, rel=0.05)

    def test_atmm_charges_actual_tokens(self, ops):
        hetero = ops["atmm"].pair_seconds([64, 1024], [64, 64], D)
        uniform = ops["atmm"].pair_seconds([1024, 1024], [64, 64], D)
        assert hetero < uniform


class TestJitter:
    def test_jitter_ordering_matches_fig18(self, ops):
        """ATMM most stable; S-LoRA 3x, Punica/dLoRA 2x its fluctuation."""
        assert ops["atmm"].jitter_frac < ops["punica"].jitter_frac
        assert ops["atmm"].jitter_frac < ops["dlora"].jitter_frac
        assert ops["slora"].jitter_frac > ops["punica"].jitter_frac
        assert ops["slora"].jitter_frac == pytest.approx(
            3 * ops["atmm"].jitter_frac, rel=0.05
        )

    def test_sample_deterministic_without_rng(self, ops):
        assert ops["atmm"].sample_seconds(1.0) == 1.0

    def test_sample_jitters_with_rng(self, ops):
        rng = np.random.default_rng(0)
        samples = {ops["slora"].sample_seconds(1.0, rng) for _ in range(16)}
        assert len(samples) > 1
        assert all(s >= 0.5 for s in samples)


class TestATMMSpecifics:
    def test_lazy_profile_on_unseen_shape(self):
        op = ATMMOperator(GemmCostModel(A100_80GB),
                          hidden_dims=(D,), ranks=(64,))
        # Rank 32 was not in the offline sweep; lookup must still work.
        t = op.pair_seconds([128], [32], D)
        assert t > 0
        assert op.table.contains(128, D, 32)

    def test_delta_w_under_10ms(self):
        """§4.4.1/§6.3.2: all-layer ΔW + merge in a few ms."""
        op = ATMMOperator(GemmCostModel(A100_80GB))
        t = op.delta_w_seconds(32, D, 64, num_projections=2)
        assert t < 0.010

    def test_delta_w_validation(self):
        op = ATMMOperator(GemmCostModel(A100_80GB))
        with pytest.raises(ValueError):
            op.delta_w_seconds(0, D, 64)


@settings(max_examples=25, deadline=None)
@given(
    tokens=st.lists(st.integers(1, 2048), min_size=1, max_size=6),
    rank=st.sampled_from([16, 32, 64, 128]),
)
def test_all_operators_positive_and_ordered(tokens, rank):
    """Every operator returns positive latency; adding a projection
    multiplies the per-layer cost."""
    cm = GemmCostModel(A100_80GB)
    for op in (ATMMOperator(cm), SLoRAOperator(cm),
               PunicaOperator(cm), EinsumOperator(cm)):
        ranks = [rank] * len(tokens)
        one = op.layer_seconds(tokens, ranks, D, num_projections=1)
        two = op.layer_seconds(tokens, ranks, D, num_projections=2)
        assert one > 0
        assert two == pytest.approx(2 * one, rel=1e-6)
