"""Tests for tiling-table persistence (the compiled-kernel store, §5)."""

import math

import pytest

from repro.hardware import A100_80GB
from repro.kernels import (
    CONFIG_1,
    GemmShape,
    OptimalTilingTable,
    TilingConfig,
    TilingSearch,
    shape_key,
)


class TestConfigSerialization:
    def test_roundtrip(self):
        cfg = TilingConfig(bm=64, bk=32, bn=32, wm=32, wk=32, wn=32,
                           split_k=4, tensor_cores=False)
        assert TilingConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_validates(self):
        bad = CONFIG_1.to_dict()
        bad["bm"] = 48
        with pytest.raises(ValueError):
            TilingConfig.from_dict(bad)


class TestTablePersistence:
    @pytest.fixture(scope="class")
    def table(self):
        search = TilingSearch(A100_80GB, coarse=True)
        table, _ = search.search([(4096, 64), (64, 4096)], max_m=512)
        return table

    def test_roundtrip_preserves_lookups(self, table, tmp_path):
        path = tmp_path / "table.json"
        table.save(path)
        loaded = OptimalTilingTable.load(path)
        assert len(loaded) == len(table)
        assert loaded.fallback == table.fallback
        for m in (16, 100, 512):
            for k, n in ((4096, 64), (64, 4096)):
                assert loaded.lookup(m, k, n) == table.lookup(m, k, n)
                assert loaded.profiled_latency(m, k, n) == pytest.approx(
                    table.profiled_latency(m, k, n)
                )

    def test_load_without_fallback(self, tmp_path):
        table = OptimalTilingTable()
        table.insert(shape_key(16, 4096, 64), CONFIG_1, 1e-6)
        path = tmp_path / "nofb.json"
        table.save(path)
        loaded = OptimalTilingTable.load(path)
        assert loaded.fallback is None
        with pytest.raises(KeyError):
            loaded.lookup(16, 1, 1)

    def test_loaded_table_drives_atmm(self, table, tmp_path):
        from repro.kernels import ATMMOperator, GemmCostModel
        path = tmp_path / "atmm.json"
        table.save(path)
        op = ATMMOperator(GemmCostModel(A100_80GB),
                          table=OptimalTilingTable.load(path))
        t = op.pair_seconds([128], [64], 4096)
        assert t > 0
