"""Tests for tiling configurations and their validity rules."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware import A10, A100_80GB
from repro.kernels import (
    CONFIG_1,
    CONFIG_2,
    PUNICA_CONFIG,
    SLORA_CONFIG,
    TilingConfig,
    enumerate_configs,
)


class TestTilingConfigValidation:
    def test_table1_configs_are_valid_on_a100(self):
        for cfg in (PUNICA_CONFIG, SLORA_CONFIG, CONFIG_1, CONFIG_2):
            assert cfg.is_valid_for(A100_80GB), cfg

    def test_rejects_below_min_tile(self):
        with pytest.raises(ValueError, match="below hardware minimum"):
            TilingConfig(bm=8, bk=16, bn=16, wm=16, wk=16, wn=16)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            TilingConfig(bm=48, bk=16, bn=16, wm=16, wk=16, wn=16)

    def test_rejects_warp_exceeding_block(self):
        with pytest.raises(ValueError):
            TilingConfig(bm=16, bk=16, bn=16, wm=32, wk=16, wn=16)

    def test_rejects_non_dividing_warp(self):
        # 64 % 48 != 0 is impossible with powers of two; instead check
        # the divisibility path via wk > bk.
        with pytest.raises(ValueError):
            TilingConfig(bm=64, bk=16, bn=64, wm=64, wk=32, wn=64)

    def test_rejects_bad_split_k(self):
        with pytest.raises(ValueError):
            TilingConfig(bm=16, bk=16, bn=16, wm=16, wk=16, wn=16, split_k=0)

    def test_warps_per_block(self):
        assert PUNICA_CONFIG.warps_per_block == 1
        assert CONFIG_1.warps_per_block == 2
        assert CONFIG_2.warps_per_block == 4

    def test_table1_tuple_roundtrip(self):
        assert PUNICA_CONFIG.as_tuple() == (16, 64, 64, 16, 16, 64)

    def test_smem_tile_bytes(self):
        cfg = TilingConfig(bm=16, bk=16, bn=16, wm=16, wk=16, wn=16)
        assert cfg.smem_tile_bytes == 2 * (16 * 16 + 16 * 16)


class TestEnumerateConfigs:
    def test_nonempty_and_all_valid(self):
        configs = enumerate_configs(A100_80GB)
        assert len(configs) > 100
        assert all(c.is_valid_for(A100_80GB) for c in configs)

    def test_smaller_gpu_has_fewer_configs(self):
        a100 = enumerate_configs(A100_80GB)
        a10 = enumerate_configs(A10)
        assert len(a10) <= len(a100)

    def test_split_k_toggle(self):
        with_k = enumerate_configs(A100_80GB, include_split_k=True)
        without = enumerate_configs(A100_80GB, include_split_k=False)
        assert len(without) < len(with_k)
        assert all(c.split_k == 1 for c in without)

    def test_core_type_filter(self):
        tensor_only = enumerate_configs(A100_80GB, tensor_cores=True)
        assert all(c.tensor_cores for c in tensor_only)
        cuda_only = enumerate_configs(A100_80GB, tensor_cores=False)
        assert all(not c.tensor_cores for c in cuda_only)

    @given(st.sampled_from(enumerate_configs(A100_80GB, include_split_k=False)))
    def test_enumerated_configs_satisfy_invariants(self, cfg):
        assert cfg.bm % cfg.wm == 0
        assert cfg.bn % cfg.wn == 0
        assert cfg.bk % cfg.wk == 0
        assert cfg.warps_per_block <= 32
