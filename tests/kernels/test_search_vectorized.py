"""Vectorized search path: bit-identical to the scalar reference.

The batched numpy evaluation (``gemm_seconds_batch``) and the pruned
vectorized sweep are pure wall-clock optimizations — every latency,
winner, and tie-break must match the seed's scalar double loop exactly
(``==``, not approx).  These properties are what lets the store cache a
table searched by either path.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import A100_80GB
from repro.hardware.gpu import GPUSpec, get_gpu, list_gpus
from repro.kernels import GemmCostModel, GemmShape
from repro.kernels.search import TilingSearch, bucket_m
from repro.kernels.tiling import (
    TilingConfigSpace,
    canonical_key,
    enumerate_configs,
)

gpu_specs = st.builds(
    GPUSpec,
    name=st.just("prop-gpu"),
    num_sms=st.integers(8, 160),
    sm_clock_ghz=st.floats(0.8, 2.0),
    tensor_tflops_fp16=st.floats(50.0, 2000.0),
    cuda_tflops_fp16=st.floats(10.0, 150.0),
    hbm_bandwidth_gbps=st.floats(300.0, 4000.0),
    hbm_capacity_gb=st.just(40.0),
    shared_mem_per_sm_kb=st.sampled_from([96, 164, 228]),
    register_file_per_sm_kb=st.sampled_from([128, 256]),
)

shapes = st.builds(
    GemmShape,
    m=st.integers(1, 16384),
    k=st.sampled_from([16, 64, 128, 512, 4096]),
    n=st.sampled_from([16, 64, 512, 4096]),
)


class TestBatchEquality:
    """gemm_seconds_batch == gemm_seconds cell-for-cell, exactly."""

    @settings(max_examples=25, deadline=None)
    @given(gpu=gpu_specs, shape_list=st.lists(shapes, min_size=1,
                                              max_size=6))
    def test_random_gpus_and_shapes(self, gpu, shape_list):
        cm = GemmCostModel(gpu)
        space = TilingConfigSpace.enumerate_space(gpu)
        # Thin the space so the scalar side stays fast.
        space = space.select(np.arange(0, len(space), 13))
        grid = cm.gemm_seconds_batch(shape_list, space)
        assert grid.shape == (len(shape_list), len(space))
        for i, shape in enumerate(shape_list):
            for j in range(len(space)):
                assert grid[i, j] == cm.gemm_seconds(shape, space.config(j))

    def test_full_default_grid_exact(self):
        cm = GemmCostModel(A100_80GB)
        search = TilingSearch(A100_80GB, cost_model=cm, coarse=True)
        shape_list = [GemmShape(m, 4096, 64)
                      for m in search.m_buckets(2048)]
        grid = cm.gemm_seconds_batch(shape_list, search.space)
        for i, shape in enumerate(shape_list):
            col = [cm.gemm_seconds(shape, c) for c in search.configs]
            assert grid[i].tolist() == col

    def test_config_idx_subset_matches_full(self):
        cm = GemmCostModel(A100_80GB)
        space = TilingConfigSpace.enumerate_space(A100_80GB)
        idx = np.array([0, 5, 17, len(space) - 1])
        shape_list = [GemmShape(300, 4096, 64)]
        full = cm.gemm_seconds_batch(shape_list, space)
        sub = cm.gemm_seconds_batch(shape_list, space, config_idx=idx)
        assert sub.tolist() == full[:, idx].tolist()

    def test_accepts_config_objects(self):
        cm = GemmCostModel(A100_80GB)
        configs = enumerate_configs(A100_80GB)[::29]
        grid = cm.gemm_seconds_batch([GemmShape(128, 4096, 16)], configs)
        assert grid.tolist() == [
            [cm.gemm_seconds(GemmShape(128, 4096, 16), c) for c in configs]
        ]


class TestSearchEquivalence:
    """Pruned vectorized sweep produces the scalar table, exactly."""

    @pytest.mark.parametrize("gpu_name", list_gpus())
    @pytest.mark.parametrize("coarse", [True, False])
    def test_registry_gpus(self, gpu_name, coarse):
        gpu = get_gpu(gpu_name)
        search = TilingSearch(gpu, coarse=coarse)
        pairs = search.kn_pairs_for_model((4096,), (16, 64))
        vec, rep_v = search.search(pairs, max_m=2048)
        sca, rep_s = search.search(pairs, max_m=2048, vectorize=False)
        assert vec._table == sca._table
        assert vec._latency == sca._latency
        assert vec.fallback == sca.fallback
        assert rep_v.num_profiles == rep_s.num_profiles
        assert rep_v.num_evals <= rep_s.num_evals

    def test_full_default_scale(self):
        """The exact default_table() grid: 92 shapes, every M bucket."""
        search = TilingSearch(A100_80GB, coarse=True)
        pairs = search.kn_pairs_for_model((4096,), (16, 32, 64, 128))
        extra = [GemmShape(4096, r, 4096) for r in (16, 32, 64, 128)]
        vec, rep = search.search(pairs, extra_shapes=extra)
        sca, _ = search.search(pairs, extra_shapes=extra, vectorize=False)
        assert vec._table == sca._table
        assert vec._latency == sca._latency
        assert vec.fallback == sca.fallback
        assert rep.vectorized and rep.pruned_configs > 0

    def test_pruning_disabled_still_matches(self):
        search = TilingSearch(A100_80GB, coarse=True)
        pairs = [(4096, 64)]
        no_prune, rep = search.search(pairs, max_m=4096, prune_eps=None)
        pruned, _ = search.search(pairs, max_m=4096)
        assert no_prune._table == pruned._table
        assert rep.pruned_configs == 0

    def test_profile_shape_vectorized_matches_scalar(self):
        search = TilingSearch(A100_80GB, coarse=True)
        for shape in (GemmShape(16, 4096, 16), GemmShape(1024, 64, 4096),
                      GemmShape(16384, 4096, 128)):
            assert (search.profile_shape_vectorized(shape)
                    == search.profile_shape(shape))


class TestTieBreaking:
    """Ties resolve to the first config in canonical order everywhere."""

    class _ConstantModel(GemmCostModel):
        """Every config costs the same: the whole sweep is one big tie."""

        def _gemm_seconds(self, shape, config):
            return 1e-6

        def gemm_seconds_batch(self, shapes, configs, config_idx=None):
            n = len(config_idx) if config_idx is not None else len(configs)
            return np.full((len(shapes), n), 1e-6)

    def test_scalar_vectorized_and_reload_agree(self, tmp_path):
        cm = self._ConstantModel(A100_80GB)
        search = TilingSearch(A100_80GB, cost_model=cm, coarse=True)
        first = search.space.config(0)
        scalar_cfg, _ = search.profile_shape(GemmShape(64, 4096, 16))
        vector_cfg, _ = search.profile_shape_vectorized(
            GemmShape(64, 4096, 16))
        assert scalar_cfg == first
        assert vector_cfg == first
        table, _ = search.search([(4096, 16)], max_m=256)
        assert all(cfg == first for cfg in table._table.values())
        path = tmp_path / "t.json"
        table.save(path)
        reloaded = type(table).load(path)
        assert reloaded._table == table._table

    def test_space_order_is_canonical(self):
        space = TilingConfigSpace.enumerate_space(A100_80GB)
        keys = [canonical_key(space.config(i)) for i in range(0, len(space),
                                                             97)]
        assert keys == sorted(keys)


class TestConfigSpace:
    @pytest.mark.parametrize("gpu_name", list_gpus())
    @pytest.mark.parametrize("tensor_cores", [None, True, False])
    def test_matches_enumerate_configs(self, gpu_name, tensor_cores):
        gpu = get_gpu(gpu_name)
        space = TilingConfigSpace.enumerate_space(gpu,
                                                  tensor_cores=tensor_cores)
        listed = enumerate_configs(gpu, tensor_cores=tensor_cores)
        assert space.configs() == listed

    def test_from_configs_roundtrip(self):
        configs = enumerate_configs(A100_80GB)[::17]
        space = TilingConfigSpace.from_configs(configs)
        assert space.configs() == list(configs)

    def test_select_preserves_order(self):
        space = TilingConfigSpace.enumerate_space(A100_80GB)
        mask = space.bm >= 64
        sub = space.select(mask)
        expected = [c for c in space.configs() if c.bm >= 64]
        assert sub.configs() == expected


class TestBucketMBitTrick:
    def test_matches_loop_reference(self):
        def reference(m):
            bucket = 16
            while bucket < m:
                bucket *= 2
            return bucket

        for m in list(range(1, 2050)) + [4096, 4097, 16383, 16384, 16385]:
            assert bucket_m(m) == reference(m)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_m(0)


class TestCostModelFingerprint:
    def test_changes_with_constants(self):
        cm = GemmCostModel(A100_80GB)
        base = cm.version_fingerprint()
        tweaked = GemmCostModel(A100_80GB, mem_efficiency=0.5)
        assert tweaked.version_fingerprint() != base

    def test_independent_of_gpu(self):
        a = GemmCostModel(get_gpu("A100-80GB")).version_fingerprint()
        b = GemmCostModel(get_gpu("A10")).version_fingerprint()
        assert a == b
