"""Persistent kernel-table store: fingerprints, atomicity, invalidation."""

import dataclasses
import json
import math
import threading

import pytest

from repro.hardware import A100_80GB
from repro.hardware.gpu import get_gpu
from repro.kernels import GemmCostModel
from repro.kernels.search import (
    OptimalTilingTable,
    TilingSearch,
    clear_table_cache,
    default_table,
    shape_key,
)
from repro.kernels.store import (
    ENV_STORE_DIR,
    KernelTableStore,
    default_user_store_dir,
    resolve_store_dir,
    table_fingerprint,
)
from repro.kernels.tiling import CONFIG_1, CONFIG_2


def _small_table():
    table = OptimalTilingTable(fallback=CONFIG_1)
    table.insert(shape_key(16, 4096, 16), CONFIG_1, 1.5e-6)
    table.insert(shape_key(32, 4096, 16), CONFIG_2, float("nan"))
    table.insert(shape_key(64, 4096, 16), CONFIG_1, 2.5e-6)
    return table


def _tables_equal(a, b):
    if a._table != b._table or a.fallback != b.fallback:
        return False
    if a._latency.keys() != b._latency.keys():
        return False
    return all(
        va == vb or (math.isnan(va) and math.isnan(vb))
        for (_, va), vb in zip(sorted(a._latency.items()),
                               (b._latency[k] for k in sorted(b._latency)))
    )


class TestFingerprint:
    ARGS = ((4096,), (16, 32, 64, 128), 16384, True)

    def test_stable(self):
        a = table_fingerprint(A100_80GB, *self.ARGS)
        b = table_fingerprint(A100_80GB, *self.ARGS)
        assert a == b and len(a) == 16

    def test_input_order_irrelevant(self):
        a = table_fingerprint(A100_80GB, (4096,), (16, 64), 1024, True)
        b = table_fingerprint(A100_80GB, (4096,), (64, 16), 1024, True)
        assert a == b

    def test_sensitive_to_every_input(self):
        base = table_fingerprint(A100_80GB, *self.ARGS)
        assert table_fingerprint(get_gpu("A10"), *self.ARGS) != base
        assert table_fingerprint(A100_80GB, (2048,), (16, 32, 64, 128),
                                 16384, True) != base
        assert table_fingerprint(A100_80GB, (4096,), (16,), 16384,
                                 True) != base
        assert table_fingerprint(A100_80GB, (4096,), (16, 32, 64, 128),
                                 8192, True) != base
        assert table_fingerprint(A100_80GB, (4096,), (16, 32, 64, 128),
                                 16384, False) != base

    def test_sensitive_to_full_gpu_spec_not_just_name(self):
        clone = dataclasses.replace(A100_80GB, num_sms=64)
        assert (table_fingerprint(clone, *self.ARGS)
                != table_fingerprint(A100_80GB, *self.ARGS))

    def test_sensitive_to_cost_model_constants(self):
        tweaked = GemmCostModel(A100_80GB, mem_efficiency=0.5)
        assert (table_fingerprint(A100_80GB, *self.ARGS, cost_model=tweaked)
                != table_fingerprint(A100_80GB, *self.ARGS))


class TestRoundTrip:
    def test_save_load_equality(self, tmp_path):
        store = KernelTableStore(tmp_path)
        table = _small_table()
        store.save("abc123", table, meta={"gpu": "A100-80GB"})
        loaded = store.load("abc123")
        assert loaded is not None
        assert _tables_equal(loaded, table)

    def test_no_fallback_roundtrip(self, tmp_path):
        store = KernelTableStore(tmp_path)
        table = OptimalTilingTable()
        table.insert(shape_key(16, 64, 16), CONFIG_2, 1e-6)
        store.save("x", table)
        loaded = store.load("x")
        assert loaded.fallback is None
        assert loaded._table == table._table

    def test_searched_table_roundtrip(self, tmp_path):
        search = TilingSearch(A100_80GB, coarse=True)
        table, _ = search.search([(4096, 64)], max_m=1024)
        store = KernelTableStore(tmp_path)
        store.save("real", table)
        loaded = store.load("real")
        assert _tables_equal(loaded, table)

    def test_no_tmp_files_left(self, tmp_path):
        store = KernelTableStore(tmp_path)
        store.save("abc", _small_table())
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name != "table-abc.json"]
        assert leftovers == []

    def test_legacy_v1_format_loads(self, tmp_path):
        """Tables written before deduplication still read back."""
        payload = {
            "format": 1,
            "fallback": CONFIG_1.to_dict(),
            "entries": [
                {"key": str(shape_key(16, 4096, 16)),
                 "config": CONFIG_2.to_dict(), "latency_s": 2e-6},
            ],
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        table = OptimalTilingTable.load(path)
        assert table.fallback == CONFIG_1
        assert table._table[shape_key(16, 4096, 16)] == CONFIG_2


class TestInvalidation:
    def test_missing_file_is_a_miss(self, tmp_path):
        assert KernelTableStore(tmp_path).load("nothere") is None

    def test_corrupted_json_is_a_miss(self, tmp_path):
        store = KernelTableStore(tmp_path)
        store.path_for("bad").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("bad").write_text("{not json")
        assert store.load("bad") is None

    def test_truncated_payload_is_a_miss(self, tmp_path):
        store = KernelTableStore(tmp_path)
        store.save("t", _small_table())
        doc = json.loads(store.path_for("t").read_text())
        del doc["table"]["configs"]
        store.path_for("t").write_text(json.dumps(doc))
        assert store.load("t") is None

    def test_stale_store_version_is_a_miss(self, tmp_path):
        store = KernelTableStore(tmp_path)
        store.save("v", _small_table())
        doc = json.loads(store.path_for("v").read_text())
        doc["store_version"] = -1
        store.path_for("v").write_text(json.dumps(doc))
        assert store.load("v") is None

    def test_renamed_file_fingerprint_mismatch_is_a_miss(self, tmp_path):
        store = KernelTableStore(tmp_path)
        store.save("orig", _small_table())
        store.path_for("orig").rename(store.path_for("moved"))
        assert store.load("moved") is None

    def test_entries_marks_stale_files(self, tmp_path):
        store = KernelTableStore(tmp_path)
        store.save("good", _small_table())
        store.path_for("good").rename(store.path_for("renamed"))
        entries = store.entries()
        assert len(entries) == 1 and entries[0]["stale"]


class TestResolveStoreDir:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_STORE_DIR, raising=False)
        assert resolve_store_dir() is None

    def test_env_var_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path))
        assert resolve_store_dir() == tmp_path

    def test_explicit_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_STORE_DIR, "/elsewhere")
        assert resolve_store_dir(tmp_path) == tmp_path

    def test_empty_string_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_STORE_DIR, "")
        assert resolve_store_dir() is None

    def test_user_dir_respects_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_user_store_dir() == (
            tmp_path / "repro" / "kernel-tables"
        )


class TestDefaultTableStore:
    ARGS = dict(hidden_dims=(4096,), ranks=(16,), max_m=256)

    def test_second_process_would_load_from_disk(self, monkeypatch,
                                                 tmp_path):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path))
        clear_table_cache()
        first = default_table(A100_80GB, **self.ARGS)
        fingerprint = table_fingerprint(
            A100_80GB, self.ARGS["hidden_dims"], self.ARGS["ranks"],
            self.ARGS["max_m"], True,
        )
        assert KernelTableStore(tmp_path).path_for(fingerprint).exists()

        # Simulate a fresh process: drop the in-memory cache and make
        # searching impossible — only a disk load can succeed.
        clear_table_cache()
        import repro.kernels.search as search_mod

        def no_search(*a, **k):
            raise AssertionError("should have loaded from the store")

        monkeypatch.setattr(search_mod.TilingSearch, "search", no_search)
        second = default_table(A100_80GB, **self.ARGS)
        assert _tables_equal(first, second)
        clear_table_cache()

    def test_no_store_dir_means_no_files(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_STORE_DIR, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        clear_table_cache()
        default_table(A100_80GB, **self.ARGS)
        assert not (tmp_path / "repro").exists()
        clear_table_cache()

    def test_concurrent_default_table_searches_once(self, monkeypatch):
        monkeypatch.delenv(ENV_STORE_DIR, raising=False)
        clear_table_cache()
        import repro.kernels.search as search_mod

        searches = []
        real_search = search_mod.TilingSearch.search

        def counting_search(self, *a, **k):
            searches.append(1)
            return real_search(self, *a, **k)

        monkeypatch.setattr(search_mod.TilingSearch, "search",
                            counting_search)
        tables = [None] * 4

        def worker(i):
            tables[i] = default_table(A100_80GB, **self.ARGS)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(searches) == 1
        assert all(t is tables[0] for t in tables)
        clear_table_cache()
