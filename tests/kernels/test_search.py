"""Tests for the profile-based optimal tiling search (Algorithm 2)."""

import pytest

from repro.hardware import A100_80GB
from repro.kernels import (
    GemmCostModel,
    GemmShape,
    OptimalTilingTable,
    TilingSearch,
    shape_key,
)
from repro.kernels.search import bucket_m, default_table
from repro.kernels.tiling import CONFIG_1


class TestBucketing:
    def test_power_of_two_buckets(self):
        assert bucket_m(1) == 16
        assert bucket_m(16) == 16
        assert bucket_m(17) == 32
        assert bucket_m(1000) == 1024

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_m(0)


class TestShapeKey:
    def test_distinct_shapes_distinct_keys(self):
        keys = {
            shape_key(m, k, n)
            for m in (16, 32) for k in (64, 4096) for n in (16, 64)
        }
        assert len(keys) == 8

    def test_packing_fields(self):
        key = shape_key(1, 2, 3)
        assert key == 1 | (2 << 32) | (3 << 64)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            shape_key(0, 1, 1)
        with pytest.raises(ValueError):
            shape_key(1 << 33, 1, 1)


class TestTable:
    def test_lookup_miss_without_fallback_raises(self):
        table = OptimalTilingTable()
        with pytest.raises(KeyError):
            table.lookup(64, 4096, 64)

    def test_fallback_served_on_miss(self):
        table = OptimalTilingTable(fallback=CONFIG_1)
        assert table.lookup(64, 4096, 64) is CONFIG_1

    def test_insert_then_lookup_bucket(self):
        table = OptimalTilingTable()
        table.insert(shape_key(64, 4096, 64), CONFIG_1, 1e-5)
        # Any m in the (32, 64] bucket hits the same entry.
        assert table.lookup(50, 4096, 64) is CONFIG_1
        assert table.profiled_latency(50, 4096, 64) == 1e-5
        assert table.contains(64, 4096, 64)
        assert not table.contains(128, 4096, 64)


class TestSearch:
    @pytest.fixture(scope="class")
    def search(self):
        return TilingSearch(A100_80GB, coarse=True)

    def test_kn_pairs_cover_shrink_and_expand(self, search):
        pairs = search.kn_pairs_for_model([4096], [64])
        assert (4096, 64) in pairs and (64, 4096) in pairs

    def test_search_covers_all_buckets(self, search):
        table, report = search.search([(4096, 64)], max_m=1024)
        assert report.num_shapes == len(search.m_buckets(1024))
        assert len(table) == report.num_shapes
        assert table.fallback is not None

    def test_winner_is_argmin_over_configs(self, search):
        shape = GemmShape(256, 4096, 64)
        best_cfg, best_lat = search.profile_shape(shape)
        cm = search.cost_model
        assert all(
            cm.gemm_seconds(shape, c) >= best_lat for c in search.configs
        )
        assert cm.gemm_seconds(shape, best_cfg) == best_lat

    def test_adaptive_winners_differ_across_sizes(self, search):
        """The whole point of ATMM: different shapes want different tiles."""
        small_cfg, _ = search.profile_shape(GemmShape(16, 4096, 64))
        large_cfg, _ = search.profile_shape(GemmShape(8192, 4096, 4096))
        assert small_cfg != large_cfg
        # Small shapes want small/split tiles, large shapes big tiles.
        assert small_cfg.bm <= large_cfg.bm

    def test_extra_shapes_profiled(self, search):
        table, _ = search.search(
            [(4096, 64)], max_m=64,
            extra_shapes=[GemmShape(4096, 64, 4096)],
        )
        assert table.contains(4096, 64, 4096)


class TestDefaultTable:
    def test_cached_across_calls(self):
        t1 = default_table(A100_80GB, hidden_dims=(4096,), ranks=(64,), max_m=256)
        t2 = default_table(A100_80GB, hidden_dims=(4096,), ranks=(64,), max_m=256)
        assert t1 is t2

    def test_covers_lora_shapes(self):
        t = default_table(A100_80GB, hidden_dims=(4096,), ranks=(64,), max_m=256)
        assert t.contains(32, 4096, 64)    # shrink
        assert t.contains(32, 64, 4096)    # expand
        assert t.contains(4096, 64, 4096)  # delta-W
