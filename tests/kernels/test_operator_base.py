"""Tests for the LoRAOperator shared machinery and MemoryPlan guards."""

import numpy as np
import pytest

from repro.hardware import A100_80GB
from repro.kernels import ATMMOperator, GemmCostModel
from repro.runtime.memory import MemoryPlan


@pytest.fixture(scope="module")
def op():
    return ATMMOperator(GemmCostModel(A100_80GB))


class TestSharedOperatorPieces:
    def test_add_seconds_memory_bound(self, op):
        """The LoRA-output add streams 3x the activation bytes."""
        t = op.add_seconds(1024, 4096)
        cm = op.cost_model
        expected = cm.elementwise_seconds(3 * 1024 * 4096 * 2) \
            + cm.launch_seconds(1)
        assert t == pytest.approx(expected)

    def test_layer_seconds_composition(self, op):
        pair = op.pair_seconds([128], [64], 4096)
        add = op.add_seconds(128, 4096)
        layer = op.layer_seconds([128], [64], 4096, num_projections=3)
        assert layer == pytest.approx(3 * (pair + add))

    def test_sample_clamped_at_half_mean(self, op):
        class Degenerate:
            """A 'generator' that always draws an absurdly low sample."""

            def normal(self, mean, std):
                return -1.0

        assert op.sample_seconds(1.0, Degenerate()) == pytest.approx(0.5)
        rng = np.random.default_rng(0)
        samples = [op.sample_seconds(1.0, rng) for _ in range(200)]
        assert min(samples) >= 0.5

    def test_validation_helpers(self, op):
        with pytest.raises(ValueError):
            op.pair_seconds([1], [0], 4096)
        with pytest.raises(ValueError):
            op.pair_seconds([-1], [64], 4096)


class TestMemoryPlan:
    def test_oversubscription_rejected(self):
        with pytest.raises(ValueError, match="oversubscribed"):
            MemoryPlan(
                total_bytes=100,
                weights_bytes=60,
                adapter_pool_bytes=30,
                activation_reserve_bytes=10,
                kv_bytes=10,
            )

    def test_exact_fit_allowed(self):
        plan = MemoryPlan(
            total_bytes=100,
            weights_bytes=60,
            adapter_pool_bytes=20,
            activation_reserve_bytes=10,
            kv_bytes=10,
        )
        assert plan.kv_bytes == 10
