"""Property-based tests over the GEMM cost model.

These pin the physical sanity of the analytical model: work monotonicity,
grouped-launch consistency, padding dominance, and double-buffering
benefit — the load-bearing assumptions behind every serving number.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import A100_80GB
from repro.kernels import (
    GemmCostModel,
    GemmShape,
    GroupedGemm,
    enumerate_configs,
)

pytestmark = pytest.mark.property

CM = GemmCostModel(A100_80GB)
CONFIGS = enumerate_configs(A100_80GB, include_split_k=False)[::7]

shapes = st.builds(
    GemmShape,
    m=st.integers(1, 4096),
    k=st.sampled_from([64, 512, 4096]),
    n=st.sampled_from([16, 64, 512, 4096]),
)
configs = st.sampled_from(CONFIGS)


@settings(max_examples=60, deadline=None)
@given(shape=shapes, cfg=configs)
def test_monotone_in_k(shape, cfg):
    """Doubling K (more multiply-accumulate work) never gets cheaper."""
    bigger = GemmShape(shape.m, shape.k * 2, shape.n)
    assert CM.gemm_seconds(bigger, cfg) >= CM.gemm_seconds(shape, cfg) * 0.999


@settings(max_examples=60, deadline=None)
@given(shape=shapes, cfg=configs)
def test_grouped_singleton_matches_single(shape, cfg):
    """A grouped launch of one problem equals the single-GEMM path plus
    its launch overhead."""
    grouped = GroupedGemm.of([shape])
    single = CM.gemm_seconds(shape, cfg) + CM.launch_seconds(1)
    assert CM.grouped_seconds(grouped, cfg) == pytest.approx(single, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    ms_=st.lists(st.integers(1, 1024), min_size=2, max_size=6),
    cfg=configs,
)
def test_grouped_at_least_as_slow_as_biggest_member(ms_, cfg):
    """A grouped launch cannot beat its most expensive member alone."""
    problems = [GemmShape(m, 4096, 64) for m in ms_]
    grouped = GroupedGemm.of(problems)
    worst = max(
        CM.gemm_seconds(p, cfg) for p in problems
    )
    # Allow a tiny tolerance: utilization improves in the group, but the
    # group still carries the worst member's full work.
    assert CM.grouped_seconds(grouped, cfg) >= worst * 0.75


@settings(max_examples=40, deadline=None)
@given(
    ms_=st.lists(st.integers(1, 1024), min_size=2, max_size=6),
    cfg=configs,
)
def test_padded_batch_never_cheaper_than_grouped(ms_, cfg):
    """Padding to the batch max can only add work (§4.3.1)."""
    problems = [GemmShape(m, 4096, 64) for m in ms_]
    grouped = GroupedGemm.of(problems)
    assert CM.batched_padded_seconds(grouped, cfg) >= \
        CM.grouped_seconds(grouped, cfg) * 0.999


@settings(max_examples=60, deadline=None)
@given(shape=shapes, cfg=configs)
def test_double_buffering_never_hurts(shape, cfg):
    single = dataclasses.replace(cfg, double_buffered=False)
    assert CM.gemm_seconds(shape, cfg) <= \
        CM.gemm_seconds(shape, single) * 1.0001


@settings(max_examples=60, deadline=None)
@given(shape=shapes, cfg=configs)
def test_latency_cache_consistency(shape, cfg):
    """The lru_cache wrapper returns exactly the uncached value."""
    assert CM.gemm_seconds(shape, cfg) == CM._gemm_seconds(shape, cfg)
