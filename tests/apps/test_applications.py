"""Tests for the application layer and multi-app deployment."""

import pytest

from repro.apps import (
    Deployment,
    VisionApplication,
    video_analytics_app,
    visual_retrieval_app,
)
from repro.core import VLoRAConfig
from repro.generation.fusion import KnowledgeItem


class TestVisionApplication:
    def test_factories_produce_valid_apps(self):
        video = video_analytics_app(duration_s=5.0)
        retrieval = visual_retrieval_app(duration_s=5.0)
        assert video.knowledge and retrieval.knowledge
        assert video.latency_slo_s == 1.0

    def test_requests_carry_the_slo(self):
        app = video_analytics_app(duration_s=3.0, latency_slo_s=2.5)
        reqs = app.build_requests(["lora-x"])
        assert reqs
        assert all(r.slo_s == 2.5 for r in reqs)

    def test_validation(self):
        item = KnowledgeItem("k", "visual_qa", 0.5)
        with pytest.raises(ValueError, match="name"):
            VisionApplication("", [item], ["visual_qa"], lambda ids: [])
        with pytest.raises(ValueError, match="knowledge"):
            VisionApplication("a", [], ["visual_qa"], lambda ids: [])
        with pytest.raises(ValueError, match="unknown tasks"):
            VisionApplication("a", [item], ["ocr"], lambda ids: [])
        with pytest.raises(ValueError, match="positive"):
            VisionApplication("a", [item], ["visual_qa"], lambda ids: [],
                              latency_slo_s=0.0)

    def test_build_requests_needs_adapters(self):
        app = visual_retrieval_app(duration_s=3.0)
        with pytest.raises(ValueError, match="no adapters"):
            app.build_requests([])


class TestDeployment:
    @pytest.fixture(scope="class")
    def deployment(self):
        apps = [
            video_analytics_app(num_streams=1, duration_s=8.0,
                                latency_slo_s=1.0, seed=1),
            visual_retrieval_app(rate_rps=3.0, duration_s=8.0,
                                 latency_slo_s=10.0, seed=2),
        ]
        return Deployment(apps, VLoRAConfig(max_batch_size=16))

    def test_prepare_routes_every_app(self, deployment):
        result = deployment.prepare()
        assert result.num_adapters >= 2
        for app in deployment.applications:
            assert deployment.adapters_for(app.name)

    def test_apps_route_to_their_own_knowledge(self, deployment):
        deployment.prepare()
        video_adapters = set(deployment.adapters_for("video-analytics"))
        retrieval_adapters = set(
            deployment.adapters_for("visual-retrieval")
        )
        # Knowledge families differ, so no adapter serves both apps here.
        assert not video_adapters & retrieval_adapters

    def test_serve_reports_per_application(self, deployment):
        reports = deployment.serve()
        assert set(reports) == {"video-analytics", "visual-retrieval"}
        for report in reports.values():
            assert report.completed > 0
            assert report.mean_latency_s > 0
            assert report.slo_attainment is not None
        # The tight-SLO app (1 stream, task heads) should mostly hit it.
        assert reports["video-analytics"].slo_attainment > 0.8

    def test_duplicate_names_rejected(self):
        app = visual_retrieval_app(duration_s=3.0)
        with pytest.raises(ValueError, match="duplicate"):
            Deployment([app, app])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Deployment([])

    def test_unknown_app_lookup(self, deployment):
        deployment.prepare()
        with pytest.raises(KeyError):
            deployment.adapters_for("nope")

    def test_fusion_accessor_guard(self):
        d = Deployment([visual_retrieval_app(duration_s=3.0)])
        with pytest.raises(RuntimeError):
            d.fusion
