"""Tests for trace save/load/replay."""

import pytest

from repro.runtime import Request
from repro.workloads import RetrievalWorkload
from repro.workloads.replay import (
    load_trace,
    record_to_request,
    request_to_record,
    save_trace,
    trace_stats,
)


def sample_requests():
    return [
        Request(adapter_id="lora-0", arrival_time=0.5, input_tokens=100,
                output_tokens=10, task_name="visual_qa", num_images=1,
                prefix_key="img-1", prefix_tokens=64),
        Request(adapter_id="lora-1", arrival_time=0.1, input_tokens=200,
                output_tokens=1, task_name="object_detection",
                use_task_head=True, slo_s=1.0, priority=2),
    ]


class TestRoundtrip:
    def test_record_roundtrip_preserves_fields(self):
        req = sample_requests()[0]
        clone = record_to_request(request_to_record(req))
        for name in ("arrival_time", "adapter_id", "input_tokens",
                     "output_tokens", "task_name", "num_images",
                     "use_task_head", "prefix_key", "prefix_tokens",
                     "slo_s", "priority"):
            assert getattr(clone, name) == getattr(req, name), name
        # Fresh identity and progress state.
        assert clone.request_id != req.request_id
        assert not clone.prefilled

    def test_file_roundtrip_sorted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = save_trace(path, sample_requests())
        assert count == 2
        loaded = load_trace(path)
        assert len(loaded) == 2
        # Saved sorted by arrival.
        assert loaded[0].arrival_time <= loaded[1].arrival_time

    def test_generated_workload_replays_identically(self, tmp_path):
        wl = RetrievalWorkload([f"lora-{i}" for i in range(3)],
                               rate_rps=5.0, duration_s=10.0, seed=4)
        original = wl.generate()
        path = tmp_path / "wl.jsonl"
        save_trace(path, original)
        replayed = load_trace(path)
        assert len(replayed) == len(original)
        orig_sorted = sorted(original, key=lambda r: (r.arrival_time,
                                                      r.request_id))
        for a, b in zip(orig_sorted, replayed):
            assert a.arrival_time == b.arrival_time
            assert a.adapter_id == b.adapter_id
            assert a.input_tokens == b.input_tokens
            assert a.output_tokens == b.output_tokens

    def test_replayed_trace_serves_identically(self, tmp_path):
        """Replay determinism: same trace -> same simulated metrics."""
        from repro.core import SystemBuilder
        builder = SystemBuilder(num_adapters=3)
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=4.0,
                               duration_s=8.0, seed=9)
        path = tmp_path / "t.jsonl"
        save_trace(path, wl.generate())

        def run():
            engine = builder.build("v-lora")
            engine.submit(load_trace(path))
            return engine.run().avg_token_latency()

        assert run() == pytest.approx(run())


class TestPriority:
    """Priority classes must survive the trace round trip (regression:
    ``_FIELDS`` used to omit ``priority``, silently flattening every
    replayed trace to PRIORITY_NORMAL and bypassing per-priority
    admission / retry-budget / hedging behavior)."""

    def test_priority_survives_roundtrip(self, tmp_path):
        from repro.runtime.request import (
            PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL)
        reqs = [
            Request(adapter_id="lora-0", arrival_time=0.0, input_tokens=8,
                    output_tokens=2, priority=p)
            for p in (PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH)
        ]
        path = tmp_path / "prio.jsonl"
        save_trace(path, reqs)
        loaded = load_trace(path)
        assert sorted(r.priority for r in loaded) == sorted(
            r.priority for r in reqs)

    def test_record_includes_priority(self):
        rec = request_to_record(sample_requests()[1])
        assert rec["priority"] == 2

    def test_old_trace_without_priority_loads_with_default(self):
        """Traces written before the field existed still load."""
        from repro.runtime.request import PRIORITY_NORMAL
        clone = record_to_request({"arrival_time": 0.2, "adapter_id": "a",
                                   "input_tokens": 4, "output_tokens": 1})
        assert clone.priority == PRIORITY_NORMAL


class TestValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown trace fields"):
            record_to_request({"arrival_time": 0, "adapter_id": "a",
                               "input_tokens": 1, "output_tokens": 1,
                               "bogus": 1})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            record_to_request({"arrival_time": 0})

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"arrival_time": 0, "adapter_id": "a", '
                        '"input_tokens": 1, "output_tokens": 1}\n'
                        "not json\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n{"arrival_time": 0, "adapter_id": "a", '
                        '"input_tokens": 1, "output_tokens": 1}\n\n')
        assert len(load_trace(path)) == 1


class TestStats:
    def test_stats_fields(self):
        wl = RetrievalWorkload([f"lora-{i}" for i in range(4)],
                               rate_rps=8.0, duration_s=20.0,
                               top_adapter_share=0.7, seed=1)
        stats = trace_stats(wl.generate())
        assert stats["requests"] > 50
        assert stats["rate_rps"] == pytest.approx(8.0, rel=0.3)
        assert stats["top_adapter_share"] == pytest.approx(0.7, abs=0.1)
        assert set(stats["tasks"]) <= {
            "visual_qa", "image_caption", "referring_expression",
        }

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_stats([])
