"""Tests for diurnal load patterns."""

import math

import numpy as np
import pytest

from repro.workloads import RetrievalWorkload
from repro.workloads.diurnal import DiurnalPattern, diurnal_retrieval

ADAPTERS = ["lora-0", "lora-1"]


class TestPattern:
    def test_bounds(self):
        p = DiurnalPattern(peak_rps=10.0, trough_rps=2.0, period_s=60.0)
        rates = [p.rate_at(t) for t in np.linspace(0, 120, 200)]
        assert min(rates) >= 2.0 - 1e-9
        assert max(rates) <= 10.0 + 1e-9

    def test_default_phase_starts_at_trough(self):
        p = DiurnalPattern(peak_rps=10.0, trough_rps=2.0, period_s=60.0)
        assert p.rate_at(0.0) == pytest.approx(2.0)
        assert p.rate_at(30.0) == pytest.approx(10.0)

    def test_periodicity(self):
        p = DiurnalPattern(peak_rps=8.0, trough_rps=1.0, period_s=40.0)
        assert p.rate_at(7.0) == pytest.approx(p.rate_at(47.0))

    def test_keep_probability_normalized(self):
        p = DiurnalPattern(peak_rps=10.0, trough_rps=5.0, period_s=60.0)
        for t in (0.0, 15.0, 30.0):
            assert 0.0 <= p.keep_probability(t) <= 1.0
        assert p.keep_probability(30.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalPattern(peak_rps=0.0, trough_rps=0.0, period_s=60.0)
        with pytest.raises(ValueError):
            DiurnalPattern(peak_rps=5.0, trough_rps=6.0, period_s=60.0)
        with pytest.raises(ValueError):
            DiurnalPattern(peak_rps=5.0, trough_rps=1.0, period_s=0.0)
        with pytest.raises(ValueError):
            DiurnalPattern(peak_rps=5.0, trough_rps=1.0, period_s=60.0,
                           sharpness=0.0)

    def test_sharpness_narrows_peaks(self):
        plain = DiurnalPattern(peak_rps=10.0, trough_rps=2.0, period_s=60.0)
        peaky = DiurnalPattern(peak_rps=10.0, trough_rps=2.0, period_s=60.0,
                               sharpness=3.0)
        # Same extremes...
        assert peaky.rate_at(0.0) == pytest.approx(2.0)
        assert peaky.rate_at(30.0) == pytest.approx(10.0)
        # ...but strictly below the sinusoid everywhere in between,
        # so the trough dwell dominates the cycle.
        for t in (10.0, 15.0, 20.0, 40.0, 50.0):
            assert peaky.rate_at(t) < plain.rate_at(t)
        # sharpness=1 is exactly the plain sinusoid (bit-identical).
        unit = DiurnalPattern(peak_rps=10.0, trough_rps=2.0, period_s=60.0,
                              sharpness=1.0)
        for t in np.linspace(0, 60, 50):
            assert unit.rate_at(t) == plain.rate_at(t)


class TestThinning:
    def test_rate_mismatch_rejected(self):
        wl = RetrievalWorkload(ADAPTERS, rate_rps=8.0, duration_s=10.0)
        pattern = DiurnalPattern(peak_rps=10.0, trough_rps=2.0,
                                 period_s=60.0)
        with pytest.raises(ValueError, match="must equal"):
            diurnal_retrieval(wl, pattern)

    def test_thinning_follows_the_pattern(self):
        peak = 20.0
        period = 60.0
        wl = RetrievalWorkload(ADAPTERS, rate_rps=peak, duration_s=120.0,
                               seed=3)
        pattern = DiurnalPattern(peak_rps=peak, trough_rps=2.0,
                                 period_s=period)
        kept = diurnal_retrieval(wl, pattern, seed=4)
        # Troughs are centered at t=0 and 60; peaks at t=30 and 90.
        def count_in(lo, hi):
            return sum(1 for r in kept if lo <= r.arrival_time < hi)
        trough_traffic = count_in(50, 70)
        peak_traffic = count_in(20, 40)
        assert peak_traffic > 2 * trough_traffic

    def test_deterministic(self):
        wl = RetrievalWorkload(ADAPTERS, rate_rps=10.0, duration_s=30.0,
                               seed=1)
        pattern = DiurnalPattern(peak_rps=10.0, trough_rps=3.0,
                                 period_s=30.0)
        a = diurnal_retrieval(wl, pattern, seed=2)
        b = diurnal_retrieval(wl, pattern, seed=2)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_serves_through_engine(self):
        from repro.core import SystemBuilder
        builder = SystemBuilder(num_adapters=2)
        wl = RetrievalWorkload(builder.adapter_ids, rate_rps=6.0,
                               duration_s=20.0, seed=5)
        pattern = DiurnalPattern(peak_rps=6.0, trough_rps=1.0,
                                 period_s=20.0)
        engine = builder.build("v-lora")
        requests = diurnal_retrieval(wl, pattern, seed=6)
        engine.submit(requests)
        metrics = engine.run()
        assert metrics.num_completed == len(requests)
