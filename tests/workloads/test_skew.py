"""Property tests for the adapter-popularity skew helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.skew import (
    skewed_adapter_sampler,
    top_heavy_shares,
    zipf_adapter_sampler,
    zipf_shares,
)


# -- zipf_shares --------------------------------------------------------------


@given(n=st.integers(1, 2048),
       alpha=st.floats(0.0, 50.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_zipf_shares_sum_to_one(n, alpha):
    shares = zipf_shares(n, alpha)
    assert len(shares) == n
    assert math.isclose(sum(shares), 1.0, rel_tol=1e-9)
    assert all(s >= 0.0 for s in shares)
    assert not any(math.isnan(s) for s in shares)


@given(n=st.integers(2, 512),
       alpha=st.floats(0.0, 10.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_zipf_shares_monotone_nonincreasing(n, alpha):
    shares = zipf_shares(n, alpha)
    assert all(a >= b - 1e-15 for a, b in zip(shares, shares[1:]))


def test_zipf_shares_single_adapter():
    assert zipf_shares(1, 1.0) == [1.0]
    assert zipf_shares(1, 0.0) == [1.0]
    assert zipf_shares(1, 10_000.0) == [1.0]


def test_zipf_shares_extreme_alpha_no_overflow():
    # The naive ``(i+1) ** alpha`` float pow raises OverflowError here;
    # the log-space form degrades to all mass on rank 1.
    shares = zipf_shares(1000, 5000.0)
    assert shares[0] == pytest.approx(1.0)
    assert sum(shares) == pytest.approx(1.0)
    assert not any(math.isnan(s) for s in shares)


def test_zipf_shares_zero_alpha_is_uniform():
    shares = zipf_shares(8, 0.0)
    assert all(s == pytest.approx(1.0 / 8) for s in shares)


def test_zipf_shares_validation():
    with pytest.raises(ValueError, match="num_adapters"):
        zipf_shares(0)
    with pytest.raises(ValueError, match="alpha"):
        zipf_shares(4, -0.5)


# -- samplers -----------------------------------------------------------------


def test_skewed_sampler_deterministic_per_seed():
    ids = [f"lora-{i}" for i in range(16)]
    a = skewed_adapter_sampler(ids, 0.6, np.random.default_rng(7))
    b = skewed_adapter_sampler(ids, 0.6, np.random.default_rng(7))
    assert [a() for _ in range(200)] == [b() for _ in range(200)]


def test_zipf_sampler_deterministic_per_seed():
    ids = [f"lora-{i}" for i in range(64)]
    a = zipf_adapter_sampler(ids, 1.05, np.random.default_rng(11))
    b = zipf_adapter_sampler(ids, 1.05, np.random.default_rng(11))
    assert [a() for _ in range(200)] == [b() for _ in range(200)]


def test_zipf_sampler_head_heavy():
    ids = [f"lora-{i}" for i in range(64)]
    sample = zipf_adapter_sampler(ids, 1.2, np.random.default_rng(3))
    draws = [sample() for _ in range(2000)]
    # Rank 1 must dominate any single tail adapter by a wide margin.
    assert draws.count("lora-0") > 10 * max(
        draws.count(f"lora-{i}") for i in range(32, 64)
    )


def test_samplers_single_adapter():
    rng = np.random.default_rng(0)
    assert zipf_adapter_sampler(["only"], 1.0, rng)() == "only"
    assert skewed_adapter_sampler(["only"], 1.0, rng)() == "only"


def test_top_heavy_shares_sum_to_one():
    for n in (1, 2, 5, 100):
        shares = top_heavy_shares(n, max(0.6, 1.0 / n))
        assert sum(shares) == pytest.approx(1.0)
