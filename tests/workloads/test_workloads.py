"""Tests for workload generators: Azure trace, retrieval, video, skew."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    AzureTraceConfig,
    AzureTraceGenerator,
    RetrievalWorkload,
    VideoAnalyticsWorkload,
    skewed_adapter_sampler,
    zipf_shares,
)
from repro.workloads.skew import top_heavy_shares

ADAPTERS = [f"lora-{i}" for i in range(4)]


class TestAzureTrace:
    def test_rate_is_approximately_honored(self):
        cfg = AzureTraceConfig(rate_rps=10.0, duration_s=120.0, seed=1)
        events = AzureTraceGenerator(cfg).events()
        measured = len(events) / cfg.duration_s
        assert measured == pytest.approx(10.0, rel=0.2)

    def test_deterministic_per_seed(self):
        cfg = AzureTraceConfig(seed=5)
        a = AzureTraceGenerator(cfg).events()
        b = AzureTraceGenerator(cfg).events()
        assert [e.arrival_time for e in a] == [e.arrival_time for e in b]

    def test_seeds_differ(self):
        a = AzureTraceGenerator(AzureTraceConfig(seed=1)).events()
        b = AzureTraceGenerator(AzureTraceConfig(seed=2)).events()
        assert [e.arrival_time for e in a] != [e.arrival_time for e in b]

    def test_arrivals_sorted_and_bounded(self):
        cfg = AzureTraceConfig(duration_s=30.0)
        times = [e.arrival_time for e in AzureTraceGenerator(cfg).events()]
        assert times == sorted(times)
        assert all(0 < t <= 30.0 for t in times)

    def test_token_caps_respected(self):
        cfg = AzureTraceConfig(max_input_tokens=512, max_output_tokens=64,
                               duration_s=60.0)
        for e in AzureTraceGenerator(cfg).events():
            assert 8 <= e.input_tokens <= 512
            assert 8 <= e.output_tokens <= 64

    def test_burstiness_raises_variance(self):
        smooth = AzureTraceGenerator(
            AzureTraceConfig(burstiness_cv=0.3, duration_s=200.0)
        ).events()
        bursty = AzureTraceGenerator(
            AzureTraceConfig(burstiness_cv=2.0, duration_s=200.0)
        ).events()

        def cv(events):
            gaps = np.diff([e.arrival_time for e in events])
            return gaps.std() / gaps.mean()

        assert cv(bursty) > cv(smooth)

    def test_validation(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(rate_rps=0)
        with pytest.raises(ValueError):
            AzureTraceConfig(duration_s=-1)


class TestSkew:
    def test_top_heavy_shares_sum_to_one(self):
        shares = top_heavy_shares(5, 0.6)
        assert sum(shares) == pytest.approx(1.0)
        assert shares[0] == pytest.approx(0.6)

    def test_top_share_below_uniform_rejected(self):
        with pytest.raises(ValueError):
            top_heavy_shares(4, 0.1)

    def test_single_adapter(self):
        assert top_heavy_shares(1, 1.0) == [1.0]

    def test_zipf_decreasing(self):
        shares = zipf_shares(6, alpha=1.0)
        assert sum(shares) == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_zipf_alpha_zero_uniform(self):
        shares = zipf_shares(4, alpha=0.0)
        assert all(s == pytest.approx(0.25) for s in shares)

    def test_sampler_hits_target_share(self):
        rng = np.random.default_rng(0)
        sample = skewed_adapter_sampler(ADAPTERS, 0.7, rng)
        draws = [sample() for _ in range(4000)]
        share = draws.count(ADAPTERS[0]) / len(draws)
        assert share == pytest.approx(0.7, abs=0.04)


class TestRetrievalWorkload:
    def test_generates_sorted_requests(self):
        wl = RetrievalWorkload(ADAPTERS, rate_rps=5.0, duration_s=20.0)
        reqs = wl.generate()
        assert len(reqs) > 40
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)

    def test_task_mix_respected(self):
        wl = RetrievalWorkload(ADAPTERS, rate_rps=20.0, duration_s=60.0,
                               task_mix={"visual_qa": 1.0})
        reqs = wl.generate()
        assert all(r.task_name == "visual_qa" for r in reqs)

    def test_skew_controls_top_adapter(self):
        wl = RetrievalWorkload(ADAPTERS, rate_rps=20.0, duration_s=60.0,
                               top_adapter_share=0.8, seed=2)
        reqs = wl.generate()
        counts = {}
        for r in reqs:
            counts[r.adapter_id] = counts.get(r.adapter_id, 0) + 1
        top = max(counts.values()) / len(reqs)
        assert top == pytest.approx(0.8, abs=0.06)

    def test_task_heads_only_where_supported(self):
        wl = RetrievalWorkload(ADAPTERS, rate_rps=10.0, duration_s=30.0,
                               use_task_heads=True)
        for r in wl.generate():
            if r.task_name == "visual_qa":
                assert not r.use_task_head
            if r.use_task_head:
                assert r.output_tokens == 1

    def test_image_reuse_produces_shared_prefixes(self):
        wl = RetrievalWorkload(ADAPTERS, rate_rps=10.0, duration_s=60.0,
                               image_reuse_prob=0.5, seed=1)
        reqs = wl.generate()
        keys = [r.prefix_key for r in reqs]
        assert len(set(keys)) < len(keys)  # at least one key repeated

    def test_validation(self):
        with pytest.raises(ValueError):
            RetrievalWorkload([], rate_rps=1.0)
        with pytest.raises(ValueError):
            RetrievalWorkload(ADAPTERS, task_mix={"visual_qa": 0.7})
        with pytest.raises(ValueError):
            RetrievalWorkload(ADAPTERS, task_mix={"ocr": 1.0})


class TestVideoWorkload:
    def test_chunk_structure(self):
        wl = VideoAnalyticsWorkload(ADAPTERS, num_streams=2, duration_s=10.0,
                                    detection_frames=4)
        reqs = wl.generate()
        vu = [r for r in reqs if r.task_name == "video_understanding"]
        det = [r for r in reqs if r.task_name == "object_detection"]
        assert len(vu) == 2 * 10
        assert len(det) == 2 * 10 * 4

    def test_requests_per_second_property(self):
        wl = VideoAnalyticsWorkload(ADAPTERS, num_streams=3,
                                    detection_frames=4)
        assert wl.requests_per_second == pytest.approx(15.0)

    def test_streams_pinned_to_adapters(self):
        wl = VideoAnalyticsWorkload(ADAPTERS[:2], num_streams=2,
                                    duration_s=5.0)
        adapters = {r.adapter_id for r in wl.generate()}
        assert adapters == set(ADAPTERS[:2])

    def test_task_heads_flag(self):
        with_heads = VideoAnalyticsWorkload(ADAPTERS, num_streams=1,
                                            duration_s=3.0,
                                            use_task_heads=True).generate()
        assert all(r.use_task_head for r in with_heads)
        without = VideoAnalyticsWorkload(ADAPTERS, num_streams=1,
                                         duration_s=3.0,
                                         use_task_heads=False).generate()
        assert all(not r.use_task_head for r in without)
        assert all(r.output_tokens > 1 for r in without)

    def test_video_understanding_is_long_input(self):
        wl = VideoAnalyticsWorkload(ADAPTERS, num_streams=1, duration_s=3.0)
        vu = [r for r in wl.generate()
              if r.task_name == "video_understanding"]
        assert all(r.input_tokens >= 6 * 256 for r in vu)

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoAnalyticsWorkload([], num_streams=1)
        with pytest.raises(ValueError):
            VideoAnalyticsWorkload(ADAPTERS, num_streams=0)


@settings(max_examples=20, deadline=None)
@given(
    rate=st.floats(0.5, 20.0),
    share=st.floats(0.3, 0.95),
    seed=st.integers(0, 100),
)
def test_retrieval_generation_never_crashes(rate, share, seed):
    wl = RetrievalWorkload(ADAPTERS, rate_rps=rate, duration_s=5.0,
                           top_adapter_share=share, seed=seed)
    for r in wl.generate():
        assert r.input_tokens > 0 and r.output_tokens > 0
        assert r.prefix_tokens <= r.input_tokens
