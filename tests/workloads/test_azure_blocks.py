"""The streaming Azure-shape block generator (10M-scale traces).

``event_blocks`` is count-driven and chunked; its contract is spelled
out in its docstring: exactly ``num_requests`` arrivals, globally
increasing times, deterministic for a fixed ``(seed, block_size)``
pair, and — critically — **no change at all** to what :meth:`events`
produces for the same config (the scalar path draws from its own
stream).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.azure import AzureTraceConfig, AzureTraceGenerator


def _gen(seed=0, rate=50.0):
    return AzureTraceGenerator(AzureTraceConfig(rate_rps=rate, seed=seed))


def _collect(gen, n, block_size):
    return list(gen.event_blocks(n, block_size=block_size))


def test_exact_count_and_block_sizes():
    blocks = _collect(_gen(), 2_500, 1_000)
    assert [b["arrival"].size for b in blocks] == [1_000, 1_000, 500]
    for b in blocks:
        assert b["input_tokens"].size == b["arrival"].size
        assert b["output_tokens"].size == b["arrival"].size


def test_arrivals_globally_increasing():
    blocks = _collect(_gen(seed=3), 3_000, 700)
    arrivals = np.concatenate([b["arrival"] for b in blocks])
    assert arrivals.size == 3_000
    assert (np.diff(arrivals) > 0).all()
    assert (arrivals >= 0).all()


def test_deterministic_for_fixed_seed_and_block_size():
    a = _collect(_gen(seed=9), 2_000, 512)
    b = _collect(_gen(seed=9), 2_000, 512)
    for ba, bb in zip(a, b):
        for key in ("arrival", "input_tokens", "output_tokens"):
            assert (ba[key] == bb[key]).all()


def test_token_bounds():
    cfg = AzureTraceConfig(rate_rps=50.0, seed=1)
    blocks = list(AzureTraceGenerator(cfg).event_blocks(2_000))
    for b in blocks:
        assert b["input_tokens"].min() >= 8
        assert b["input_tokens"].max() <= cfg.max_input_tokens
        assert b["output_tokens"].min() >= 8
        assert b["output_tokens"].max() <= cfg.max_output_tokens
        assert b["input_tokens"].dtype == np.int64


def test_events_untouched_by_block_consumption():
    """Same seed keeps producing the exact same scalar trace."""
    fresh = _gen(seed=4).events()
    gen = _gen(seed=4)
    _collect(gen, 1_000, 256)  # burn the block stream first
    after = gen.events()
    assert after == fresh


def test_validation():
    gen = _gen()
    with pytest.raises(ValueError, match="num_requests"):
        list(gen.event_blocks(0))
    with pytest.raises(ValueError, match="block_size"):
        list(gen.event_blocks(10, block_size=0))
