"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestInfoCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("v-lora", "s-lora", "punica", "dlora"):
            assert name in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Qwen-VL-7B" in out and "LLaVA-1.5-13B" in out


class TestServe:
    def test_serve_prints_summary(self, capsys):
        rc = main(["serve", "--system", "v-lora", "--rate", "3",
                   "--duration", "6", "--adapters", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg_token_latency_ms" in out

    def test_serve_json_output(self, capsys):
        rc = main(["serve", "--rate", "2", "--duration", "5",
                   "--adapters", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] > 0

    def test_serve_video_workload(self, capsys):
        rc = main(["serve", "--workload", "video", "--rate", "2",
                   "--duration", "5", "--adapters", "2"])
        assert rc == 0
        assert "avg_token_latency_ms" in capsys.readouterr().out

    def test_serve_trace_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = main(["serve", "--rate", "2", "--duration", "5",
                   "--adapters", "2", "--trace-out", str(trace)])
        assert rc == 0
        assert trace.exists()
        capsys.readouterr()
        rc = main(["serve", "--rate", "2", "--duration", "5",
                   "--adapters", "2", "--trace-in", str(trace)])
        assert rc == 0
        assert "avg_token_latency_ms" in capsys.readouterr().out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--system", "vllm"])

    def test_missing_trace_file_is_an_error_not_a_traceback(self, capsys):
        rc = main(["serve", "--trace-in", "/nonexistent/trace.jsonl"])
        assert rc == 2
        assert "trace file not found" in capsys.readouterr().err

    def test_malformed_trace_is_an_error_not_a_traceback(self, tmp_path,
                                                         capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"adapter_id": "lora-0"}\n')  # missing fields
        rc = main(["serve", "--trace-in", str(trace)])
        assert rc == 2
        assert "malformed trace" in capsys.readouterr().err

    def test_negative_fault_rate_rejected(self, capsys):
        rc = main(["serve", "--rate", "2", "--duration", "4",
                   "--swap-fail-rate", "-1"])
        assert rc == 2
        assert "fault rates" in capsys.readouterr().err

    def test_bad_deadline_factor_rejected(self, capsys):
        rc = main(["serve", "--deadline-factor", "0"])
        assert rc == 2
        assert "deadline-factor" in capsys.readouterr().err


class TestServeWithFaults:
    def test_serve_under_faults_reports_degradation(self, capsys):
        rc = main(["serve", "--rate", "4", "--duration", "5",
                   "--adapters", "4", "--json",
                   "--swap-fail-rate", "0.5",
                   "--kv-pressure-rate", "0.3",
                   "--engine-slow-rate", "0.2",
                   "--fault-seed", "3"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] + payload["aborted"] > 0
        assert "goodput_rps" in payload

    def test_fault_runs_are_seed_reproducible(self, capsys):
        argv = ["serve", "--rate", "3", "--duration", "4", "--adapters", "3",
                "--json", "--swap-fail-rate", "1.0", "--fault-seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestFuse:
    def test_fusion_plan(self, capsys):
        rc = main(["fuse", "--items",
                   "image_classification:4:0.9,video_classification:2:0.9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 adapters" in out

    def test_bad_spec_exit_code(self, capsys):
        assert main(["fuse", "--items", "garbage"]) == 2
        assert "bad item spec" in capsys.readouterr().err


class TestCompare:
    def test_compare_renders_chart_and_summary(self, capsys):
        rc = main(["compare", "--rates", "3,6", "--duration", "6",
                   "--adapters", "3", "--systems", "v-lora,dlora"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "V-LoRA reduction" in out
        assert "dlora" in out

    @pytest.mark.parametrize("rates", ["3,oops", "", "4;8", "2,-4", "0"])
    def test_malformed_rates_rejected(self, rates, capsys):
        rc = main(["compare", "--rates", rates, "--duration", "4"])
        assert rc == 2
        assert "malformed --rates" in capsys.readouterr().err

    def test_unknown_systems_rejected(self, capsys):
        rc = main(["compare", "--rates", "4", "--systems", "v-lora,vllm"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "vllm" in err
        assert "v-lora" in err  # lists the valid names


class TestTilingSearchCommand:
    def test_summary_printed(self, capsys):
        rc = main(["tiling-search", "--dim", "4096", "--rank", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winners=" in out
        assert "m=16" in out


class TestKernelsCommands:
    ARGS = ["--dims", "4096", "--ranks", "16", "--max-m", "256"]

    def test_search_then_hit_store(self, tmp_path, capsys):
        argv = ["kernels", "search", "--store-dir", str(tmp_path)] + self.ARGS
        rc = main(argv)
        assert rc == 0
        assert "source=search" in capsys.readouterr().out
        rc = main(argv)
        assert rc == 0
        assert "source=store" in capsys.readouterr().out

    def test_force_researches(self, tmp_path, capsys):
        argv = ["kernels", "search", "--store-dir", str(tmp_path)] + self.ARGS
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--force"]) == 0
        assert "source=search" in capsys.readouterr().out

    def test_json_summary(self, tmp_path, capsys):
        rc = main(["kernels", "search", "--store-dir", str(tmp_path),
                   "--json"] + self.ARGS)
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["source"] == "search"
        assert summary["entries"] > 0
        assert (tmp_path / f"table-{summary['fingerprint']}.json").exists()

    def test_inspect_lists_tables(self, tmp_path, capsys):
        assert main(["kernels", "search", "--store-dir", str(tmp_path)]
                    + self.ARGS) == 0
        capsys.readouterr()
        rc = main(["kernels", "inspect", "--store-dir", str(tmp_path),
                   "--json"])
        assert rc == 0
        listing = json.loads(capsys.readouterr().out)
        assert len(listing["tables"]) == 1
        assert listing["tables"][0]["stale"] is False

    def test_inspect_empty_store(self, tmp_path, capsys):
        rc = main(["kernels", "inspect", "--store-dir", str(tmp_path)])
        assert rc == 0
        assert "0 table(s)" in capsys.readouterr().out


class TestTraceCommands:
    def test_generate_then_stats(self, tmp_path, capsys):
        trace = tmp_path / "wl.jsonl"
        rc = main(["trace", "generate", "--out", str(trace),
                   "--rate", "4", "--duration", "8", "--adapters", "3"])
        assert rc == 0
        rc = main(["trace", "stats", "--path", str(trace)])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out.split("wrote")[-1]
                           .split("\n", 1)[-1])
        assert stats["requests"] > 0
        assert "top_adapter_share" in stats

    def test_stats_on_missing_file_is_an_error(self, capsys):
        rc = main(["trace", "stats", "--path", "/nonexistent/wl.jsonl"])
        assert rc == 2
        assert "trace file not found" in capsys.readouterr().err
