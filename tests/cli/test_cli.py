"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestInfoCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for name in ("v-lora", "s-lora", "punica", "dlora"):
            assert name in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Qwen-VL-7B" in out and "LLaVA-1.5-13B" in out


class TestServe:
    def test_serve_prints_summary(self, capsys):
        rc = main(["serve", "--system", "v-lora", "--rate", "3",
                   "--duration", "6", "--adapters", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg_token_latency_ms" in out

    def test_serve_json_output(self, capsys):
        rc = main(["serve", "--rate", "2", "--duration", "5",
                   "--adapters", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] > 0

    def test_serve_video_workload(self, capsys):
        rc = main(["serve", "--workload", "video", "--rate", "2",
                   "--duration", "5", "--adapters", "2"])
        assert rc == 0
        assert "avg_token_latency_ms" in capsys.readouterr().out

    def test_serve_trace_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = main(["serve", "--rate", "2", "--duration", "5",
                   "--adapters", "2", "--trace-out", str(trace)])
        assert rc == 0
        assert trace.exists()
        capsys.readouterr()
        rc = main(["serve", "--rate", "2", "--duration", "5",
                   "--adapters", "2", "--trace-in", str(trace)])
        assert rc == 0
        assert "avg_token_latency_ms" in capsys.readouterr().out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--system", "vllm"])


class TestFuse:
    def test_fusion_plan(self, capsys):
        rc = main(["fuse", "--items",
                   "image_classification:4:0.9,video_classification:2:0.9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 adapters" in out

    def test_bad_spec_exit_code(self, capsys):
        assert main(["fuse", "--items", "garbage"]) == 2
        assert "bad item spec" in capsys.readouterr().err


class TestCompare:
    def test_compare_renders_chart_and_summary(self, capsys):
        rc = main(["compare", "--rates", "3,6", "--duration", "6",
                   "--adapters", "3", "--systems", "v-lora,dlora"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "V-LoRA reduction" in out
        assert "dlora" in out


class TestTilingSearchCommand:
    def test_summary_printed(self, capsys):
        rc = main(["tiling-search", "--dim", "4096", "--rank", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winners=" in out
        assert "m=16" in out


class TestTraceCommands:
    def test_generate_then_stats(self, tmp_path, capsys):
        trace = tmp_path / "wl.jsonl"
        rc = main(["trace", "generate", "--out", str(trace),
                   "--rate", "4", "--duration", "8", "--adapters", "3"])
        assert rc == 0
        rc = main(["trace", "stats", "--path", str(trace)])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out.split("wrote")[-1]
                           .split("\n", 1)[-1])
        assert stats["requests"] > 0
        assert "top_adapter_share" in stats
