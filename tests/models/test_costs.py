"""Tests for the per-iteration base-model cost model."""

import pytest

from repro.hardware import A100_80GB, H100_80GB
from repro.models import (
    LLAVA15_13B,
    LLAVA15_7B,
    QWEN_VL_7B,
    IterationCostModel,
)


@pytest.fixture(scope="module")
def costs():
    return IterationCostModel(QWEN_VL_7B, A100_80GB)


class TestDecode:
    def test_single_decode_step_magnitude(self, costs):
        """7B on A100: one decode step is roughly 9-15 ms (weights-bound)."""
        t = costs.decode_seconds([512])
        assert 0.006 < t < 0.02

    def test_batching_amortizes_weights(self, costs):
        """32 requests decode in far less than 32x one request."""
        one = costs.decode_seconds([512])
        batch = costs.decode_seconds([512] * 32)
        assert batch < 4 * one

    def test_longer_context_costs_more(self, costs):
        short = costs.decode_seconds([128] * 8)
        long = costs.decode_seconds([4096] * 8)
        assert long > short

    def test_task_head_cheaper_than_lm_head(self, costs):
        """§4.2.2: a ~100-class head beats the 152k-vocab LM head."""
        lm = costs.decode_seconds([512] * 8, lm_head=True)
        head = costs.decode_seconds([512] * 8, lm_head=False,
                                    task_head_classes=101)
        assert head < lm

    def test_validation(self, costs):
        with pytest.raises(ValueError):
            costs.decode_seconds([])
        with pytest.raises(ValueError):
            costs.decode_seconds([0])

    def test_uniform_memoized_matches_exact(self, costs):
        a = costs.decode_seconds_uniform(8, 512)
        b = costs.decode_seconds([512] * 8)
        assert a == pytest.approx(b)


class TestPrefill:
    def test_per_token_under_1ms(self, costs):
        """§6.2: prefill tokens cost '<1 ms per token'."""
        t = costs.prefill_seconds([1024])
        assert t / 1024 < 1e-3

    def test_prefill_scales_with_tokens(self, costs):
        assert costs.prefill_seconds([2048]) > costs.prefill_seconds([256])

    def test_images_add_encoder_time(self, costs):
        plain = costs.prefill_seconds([256])
        with_img = costs.prefill_seconds([256], num_images=1)
        assert with_img > plain
        assert with_img - plain == pytest.approx(
            costs.vision_encode_seconds(1), rel=0.01
        )

    def test_validation(self, costs):
        with pytest.raises(ValueError):
            costs.prefill_seconds([])
        with pytest.raises(ValueError):
            costs.prefill_seconds([-5])


class TestVisionEncoder:
    def test_zero_images_free(self, costs):
        assert costs.vision_encode_seconds(0) == 0.0

    def test_qwen_encoder_heavier_than_llava(self):
        """Openclip-ViT 1.9B vs CLIP-ViT 0.3B."""
        qwen = IterationCostModel(QWEN_VL_7B, A100_80GB)
        # LLaVA has more tokens/image but ~6x fewer parameters.
        llava = IterationCostModel(LLAVA15_7B, A100_80GB)
        assert qwen.vision_encode_seconds(1) > llava.vision_encode_seconds(1)

    def test_negative_rejected(self, costs):
        with pytest.raises(ValueError):
            costs.vision_encode_seconds(-1)


class TestCrossModelAndGPU:
    def test_13b_slower_than_7b(self):
        small = IterationCostModel(LLAVA15_7B, A100_80GB)
        big = IterationCostModel(LLAVA15_13B, A100_80GB)
        assert big.decode_seconds([512] * 8) > small.decode_seconds([512] * 8)

    def test_h100_faster_than_a100(self):
        a = IterationCostModel(QWEN_VL_7B, A100_80GB)
        h = IterationCostModel(QWEN_VL_7B, H100_80GB)
        assert h.decode_seconds([512] * 8) < a.decode_seconds([512] * 8)

    def test_head_seconds_validation(self):
        costs = IterationCostModel(QWEN_VL_7B, A100_80GB)
        with pytest.raises(ValueError):
            costs.head_seconds(0, 10)
