"""Tests for model configurations (Table 2) and LoRA adapter specs."""

import pytest

from repro.models import (
    LLAVA15_13B,
    LLAVA15_7B,
    QWEN_VL_7B,
    LoRAAdapterSpec,
    get_model,
    get_small_model,
    list_models,
)
from repro.models.config import ModelConfig, VisionEncoderConfig


class TestTable2:
    """Table 2's rows must hold."""

    @pytest.mark.parametrize("model,layers,dim,size_gb", [
        (QWEN_VL_7B, 32, 4096, 18),
        (LLAVA15_7B, 32, 4096, 13),
        (LLAVA15_13B, 40, 5120, 24),
    ])
    def test_configuration_matches_paper(self, model, layers, dim, size_gb):
        assert model.num_layers == layers
        assert model.hidden_dim == dim
        assert abs(model.weight_bytes / (1 << 30) - size_gb) < 1.5

    def test_vision_encoder_sizes(self):
        assert QWEN_VL_7B.vision_encoder.num_params == pytest.approx(1.9e9)
        assert LLAVA15_7B.vision_encoder.num_params == pytest.approx(0.3e9)

    def test_kv_bytes_per_token(self):
        """FP16 MHA: 2 (K,V) x layers x dim x 2 bytes = 512 KB for 7B."""
        assert QWEN_VL_7B.kv_bytes_per_token == 2 * 32 * 4096 * 2

    def test_registry(self):
        assert get_model("Qwen-VL-7B") is QWEN_VL_7B
        assert set(list_models()) == {
            "Qwen-VL-7B", "LLaVA-1.5-7B", "LLaVA-1.5-13B",
            "InternVL2-76B",
        }
        with pytest.raises(KeyError):
            get_model("GPT-4o")

    def test_validation(self):
        enc = VisionEncoderConfig("v", 1000)
        with pytest.raises(ValueError):
            ModelConfig("bad", 0, 64, 4, 128, 100, enc)
        with pytest.raises(ValueError):
            ModelConfig("bad", 2, 65, 4, 128, 100, enc)
        with pytest.raises(ValueError):
            VisionEncoderConfig("v", 0)

    def test_attention_flops_scale_with_context(self):
        a = QWEN_VL_7B.attention_flops(1, 100)
        b = QWEN_VL_7B.attention_flops(1, 200)
        assert b == pytest.approx(2 * a)


class TestLoRAAdapterSpec:
    def test_paper_size_arithmetic(self):
        """§4.4.1: A/B tens of MB; materialized ΔW several GB."""
        spec = LoRAAdapterSpec("a", QWEN_VL_7B, rank=64)
        assert 30e6 < spec.ab_bytes < 90e6          # paper: ~43 MB
        assert 1.5e9 < spec.delta_w_bytes < 4e9     # paper: ~3 GB

    def test_delta_w_independent_of_rank(self):
        r16 = LoRAAdapterSpec("a", QWEN_VL_7B, rank=16)
        r128 = LoRAAdapterSpec("b", QWEN_VL_7B, rank=128)
        assert r16.delta_w_bytes == r128.delta_w_bytes
        assert r16.ab_bytes < r128.ab_bytes

    def test_task_head_adds_parameters(self):
        plain = LoRAAdapterSpec("a", QWEN_VL_7B)
        headed = plain.with_head(101)
        assert headed.has_task_head
        assert headed.ab_params == plain.ab_params + 4096 * 101
        assert not plain.has_task_head

    def test_delta_w_gemm_shape(self):
        spec = LoRAAdapterSpec("a", QWEN_VL_7B, rank=64)
        assert spec.delta_w_gemm_shape() == (4096, 64, 4096)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoRAAdapterSpec("a", QWEN_VL_7B, rank=0)
        with pytest.raises(ValueError):
            LoRAAdapterSpec("a", QWEN_VL_7B, rank=8192)
        with pytest.raises(ValueError):
            LoRAAdapterSpec("a", QWEN_VL_7B, task_head_classes=-1)


class TestSmallModelZoo:
    def test_five_models(self):
        for name in ("YOLO", "OSCAR", "VideoMAE", "UNINEXT", "VisionMamba"):
            spec = get_small_model(name)
            assert spec.size_bytes > 0

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_small_model("ResNet")
