"""Tests for model/adapter checkpointing."""

import numpy as np
import pytest

from repro.nn import TinyLMM, TinyLMMConfig
from repro.nn.layers import Linear
from repro.nn.serialization import (
    load_adapter,
    load_model,
    named_parameters,
    save_adapter,
    save_model,
)


@pytest.fixture()
def model():
    return TinyLMM(TinyLMMConfig(feature_dim=8, dim=16, num_layers=1,
                                 num_heads=2, vocab_size=12, max_patches=4),
                   rng=np.random.default_rng(0))


def batch(model, rng):
    cfg = model.config
    x = rng.normal(size=(4, cfg.max_patches, cfg.feature_dim)).astype("float32")
    p = rng.integers(0, cfg.num_prompts, 4)
    return x, p


class TestNamedParameters:
    def test_paths_are_stable_and_unique(self, model):
        names = list(named_parameters(model))
        assert len(names) == len(set(names))
        assert "patch_proj.weight" in names
        assert "blocks.0.attn.q_proj.weight" in names
        assert names == list(named_parameters(model))

    def test_covers_module_parameters(self, model):
        by_name = named_parameters(model)
        assert len(by_name) == len(model.parameters())

    def test_task_heads_included(self, model):
        model.add_task_head("h", 5, rng=np.random.default_rng(1))
        assert "task_heads.h.proj.weight" in named_parameters(model)


class TestModelCheckpoint:
    def test_roundtrip_restores_outputs(self, model, tmp_path):
        rng = np.random.default_rng(2)
        x, p = batch(model, rng)
        before = model.lm_logits(x, p).data.copy()
        path = tmp_path / "model.npz"
        count = save_model(model, path)
        assert count == len(model.parameters())
        # Scramble, then restore.
        for t in model.parameters():
            t.data = t.data + 1.0
        assert not np.allclose(model.lm_logits(x, p).data, before)
        loaded = load_model(model, path)
        assert loaded == count
        np.testing.assert_allclose(model.lm_logits(x, p).data, before,
                                   atol=1e-5)

    def test_strict_rejects_mismatched_architecture(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(model, path)
        other = Linear(4, 4)
        with pytest.raises(ValueError, match="mismatch"):
            load_model(other, path)

    def test_non_strict_loads_intersection(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(model, path)
        other = TinyLMM(model.config, rng=np.random.default_rng(9))
        other.add_task_head("extra", 3)
        loaded = load_model(other, path, strict=False)
        assert loaded == len(model.parameters())

    def test_shape_mismatch_always_rejected(self, tmp_path):
        small = Linear(4, 4)
        path = tmp_path / "lin.npz"
        save_model(small, path)
        big = Linear(8, 4)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_model(big, path, strict=False)

    def test_empty_module_rejected(self, tmp_path):
        class Empty(Linear):
            def __init__(self):
                pass
        from repro.nn.layers import Module
        with pytest.raises(ValueError):
            save_model(Module(), tmp_path / "x.npz")


class TestAdapterArtifacts:
    def test_roundtrip(self, model, tmp_path):
        model.add_lora(2, rng=np.random.default_rng(3))
        for layer in model.lora_layers:
            layer.lora_b.data = np.random.default_rng(4).normal(
                size=layer.lora_b.shape
            ).astype(np.float32)
        snaps = model.lora_snapshot()
        path = tmp_path / "adapter.npz"
        save_adapter(snaps, path)
        loaded = load_adapter(path)
        assert len(loaded) == len(snaps)
        for a, b in zip(snaps, loaded):
            np.testing.assert_allclose(a.a, b.a)
            np.testing.assert_allclose(a.b, b.b)
            assert a.alpha == b.alpha
        # The loaded artifact hot-swaps into the model.
        model.lora_load(loaded)

    def test_artifact_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_adapter([], tmp_path / "x.npz")
        np.savez(tmp_path / "bogus.npz", foo=np.zeros(2))
        with pytest.raises(ValueError, match="not an adapter"):
            load_adapter(tmp_path / "bogus.npz")
