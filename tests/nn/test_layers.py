"""Tests for NN modules: Linear, Embedding, LayerNorm, attention, blocks."""

import numpy as np
import pytest

from repro.nn import (
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    Sequential,
    Tensor,
    TransformerBlock,
)
from repro.nn.layers import cross_entropy


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(8, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5, 3)

    def test_bias_optional(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_freeze_stops_gradients(self, rng):
        layer = Linear(4, 2, rng=rng).freeze()
        out = layer(Tensor(rng.normal(size=(3, 4)), requires_grad=True))
        out.sum().backward()
        assert layer.weight.grad is None

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestEmbedding:
    def test_lookup_and_grad(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        out.sum().backward()
        # Token 1 used twice: its gradient row is 2, token 3 once: 1.
        np.testing.assert_allclose(emb.weight.grad[1], np.full(4, 2.0))
        np.testing.assert_allclose(emb.weight.grad[3], np.full(4, 1.0))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(4))

    def test_out_of_range_token(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        ln = LayerNorm(6)
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 6)))
        y = ln(x)
        np.testing.assert_allclose(y.data.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(y.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gradcheck(self, rng):
        ln = LayerNorm(5)
        x_val = rng.normal(size=(3, 5)).astype(np.float32)
        x = Tensor(x_val.copy(), requires_grad=True)
        (ln(x) ** 2.0).sum().backward()

        def f(xv):
            return float((ln(Tensor(xv)) ** 2.0).sum().data)

        eps = 1e-3
        num = np.zeros_like(x_val)
        for i in range(3):
            for j in range(5):
                p = x_val.copy(); p[i, j] += eps
                m = x_val.copy(); m[i, j] -= eps
                num[i, j] = (f(p) - f(m)) / (2 * eps)
        np.testing.assert_allclose(x.grad, num, atol=2e-2, rtol=5e-2)

    def test_affine_params_learn(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert ln.beta.grad is not None
        np.testing.assert_allclose(ln.beta.grad, np.full(4, 2.0))


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_causal_mask_blocks_future(self, rng):
        attn = MultiHeadSelfAttention(8, 2, causal=True, rng=rng)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        base = attn(Tensor(x)).data
        # Perturbing a later position must not change earlier outputs.
        x2 = x.copy()
        x2[0, 5] += 10.0
        out2 = attn(Tensor(x2)).data
        np.testing.assert_allclose(base[0, :5], out2[0, :5], atol=1e-4)

    def test_non_causal_mixes_all_positions(self, rng):
        attn = MultiHeadSelfAttention(8, 2, causal=False, rng=rng)
        x = rng.normal(size=(1, 4, 8)).astype(np.float32)
        base = attn(Tensor(x)).data
        x2 = x.copy()
        x2[0, 3] += 10.0
        assert not np.allclose(base[0, 0], attn(Tensor(x2)).data[0, 0])

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_gradients_flow_to_all_projections(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        for proj in (attn.q_proj, attn.k_proj, attn.v_proj, attn.o_proj):
            assert proj.weight.grad is not None
            assert np.abs(proj.weight.grad).max() > 0


class TestBlocksAndLoss:
    def test_transformer_block_residual(self, rng):
        block = TransformerBlock(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 8)))
        assert block(x).shape == (2, 4, 8)

    def test_feedforward_shapes(self, rng):
        ff = FeedForward(8, 16, rng=rng)
        assert ff(Tensor(rng.normal(size=(3, 8)))).shape == (3, 8)

    def test_sequential_composes(self, rng):
        seq = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        assert seq(Tensor(rng.normal(size=(5, 4)))).shape == (5, 2)
        assert len(seq.parameters()) == 4

    def test_cross_entropy_matches_manual(self, rng):
        logits_val = rng.normal(size=(4, 3)).astype(np.float32)
        targets = np.array([0, 2, 1, 2])
        logits = Tensor(logits_val.copy(), requires_grad=True)
        loss = cross_entropy(logits, targets)
        # Manual reference.
        z = logits_val - logits_val.max(axis=1, keepdims=True)
        p = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
        ref = -np.log(p[np.arange(4), targets]).mean()
        assert loss.item() == pytest.approx(ref, rel=1e-5)
        loss.backward()
        grad_ref = p.copy()
        grad_ref[np.arange(4), targets] -= 1
        np.testing.assert_allclose(logits.grad, grad_ref / 4, atol=1e-5)

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_train_eval_recursion(self, rng):
        block = TransformerBlock(8, 2, rng=rng)
        block.eval()
        assert not block.attn.training
        block.train()
        assert block.attn.q_proj.training

    def test_num_parameters(self, rng):
        layer = Linear(4, 2, rng=rng)
        assert layer.num_parameters() == 4 * 2 + 2
