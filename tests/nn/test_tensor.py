"""Autograd engine tests, including numerical gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, no_grad


def numerical_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar f wrt x (float64 probing)."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f(x)
        x[idx] = orig - eps
        fm = f(x)
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_grad(op, shape_a, shape_b=None, seed=0, atol=2e-2):
    rng = np.random.default_rng(seed)
    a_val = rng.normal(size=shape_a).astype(np.float32)
    if shape_b is None:
        def f(av):
            return float(op(Tensor(av)).sum().data)
        a = Tensor(a_val.copy(), requires_grad=True)
        out = op(a).sum()
        out.backward()
        num = numerical_grad(lambda av: f(av), a_val.copy())
        np.testing.assert_allclose(a.grad, num, atol=atol, rtol=5e-2)
    else:
        b_val = rng.normal(size=shape_b).astype(np.float32)
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        out = op(a, b).sum()
        out.backward()
        num_a = numerical_grad(
            lambda av: float(op(Tensor(av), Tensor(b_val)).sum().data),
            a_val.copy(),
        )
        num_b = numerical_grad(
            lambda bv: float(op(Tensor(a_val), Tensor(bv)).sum().data),
            b_val.copy(),
        )
        np.testing.assert_allclose(a.grad, num_a, atol=atol, rtol=5e-2)
        np.testing.assert_allclose(b.grad, num_b, atol=atol, rtol=5e-2)


class TestGradChecks:
    def test_add(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))

    def test_mul(self):
        check_grad(lambda a, b: a * b, (2, 5), (2, 5))

    def test_matmul(self):
        check_grad(lambda a, b: a @ b, (3, 4), (4, 2))

    def test_batched_matmul(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5))

    def test_batched_matmul_broadcast_rhs(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (4, 5))

    def test_pow(self):
        check_grad(lambda a: (a * a + 1.5) ** 2.0, (3, 3))

    def test_div(self):
        check_grad(lambda a, b: a / (b * b + 1.0), (2, 3), (2, 3))

    def test_tanh(self):
        check_grad(lambda a: a.tanh(), (4, 4))

    def test_relu(self):
        # Keep values away from the kink for numerical stability.
        rng = np.random.default_rng(3)
        a_val = (rng.normal(size=(4, 4)) + 3.0).astype(np.float32)
        a = Tensor(a_val.copy(), requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, np.ones_like(a_val))

    def test_gelu(self):
        check_grad(lambda a: a.gelu(), (3, 4))

    def test_exp_log(self):
        check_grad(lambda a: ((a * a) + 0.5).log().exp(), (3, 3))

    def test_softmax(self):
        check_grad(lambda a: (a.softmax(axis=-1) * a).sum(), (3, 5))

    def test_sum_axis_keepdims(self):
        check_grad(lambda a: (a.sum(axis=1, keepdims=True) * a), (3, 4))

    def test_mean(self):
        check_grad(lambda a: a.mean(axis=-1), (4, 5))

    def test_reshape_transpose(self):
        check_grad(lambda a: (a.reshape(2, 6).transpose(1, 0) ** 2.0), (3, 4))

    def test_getitem(self):
        check_grad(lambda a: a[1:, :2] * 2.0, (3, 4))


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        ((a * 2.0) + (a * 3.0)).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 5.0))

    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = (a * 2.0).sum()
        assert out._prev == ()
        out.backward()
        assert a.grad is None

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2.0).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_non_grad_leaf_untouched(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=False)
        (a * b).sum().backward()
        assert b.grad is None

    def test_scalar_helpers(self):
        t = Tensor(3.5)
        assert t.item() == pytest.approx(3.5)
        assert t.shape == ()

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)) * 50)
        y = x.softmax(axis=-1)
        np.testing.assert_allclose(y.data.sum(axis=-1), np.ones(5), atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float32, (3, 4),
              elements=st.floats(-3, 3, width=32)))
def test_identities_hold(x):
    """(a + a) == 2a and softmax is shift-invariant, elementwise."""
    a = Tensor(x)
    np.testing.assert_allclose((a + a).data, (a * 2.0).data, atol=1e-5)
    shifted = Tensor(x + 10.0)
    np.testing.assert_allclose(
        a.softmax(-1).data, shifted.softmax(-1).data, atol=1e-4
    )
