"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor, clip_grad_norm


def quadratic_param(start=5.0):
    return Tensor(np.array([start], dtype=np.float32), requires_grad=True)


def step_quadratic(opt, p, iters):
    for _ in range(iters):
        loss = (p * p).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(p.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(step_quadratic(SGD([p], lr=0.1), p, 50)) < 1e-3

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        slow = abs(step_quadratic(SGD([p1], lr=0.01), p1, 30))
        fast = abs(step_quadratic(SGD([p2], lr=0.01, momentum=0.9), p2, 30))
        assert fast < slow

    def test_weight_decay_shrinks(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        # Zero loss gradient: decay alone shrinks the weight.
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.9)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()  # no grad yet: must not crash
        assert p.data[0] == 5.0

    def test_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        frozen = Tensor(np.ones(1), requires_grad=False)
        with pytest.raises(ValueError):
            SGD([frozen], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(step_quadratic(Adam([p], lr=0.1), p, 300)) < 0.05

    def test_bias_correction_first_step(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # With bias correction the first step is ~lr regardless of betas.
        assert p.data[0] == pytest.approx(0.9, abs=1e-3)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=-1.0)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 3.0, dtype=np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
