"""Tests for LoRALinear: merge/unmerge exactness, swap, deLoRA identity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import LoRALinear, Linear, Tensor
from repro.runtime.modes import delora_output


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


def make_lora(rng, in_f=8, out_f=8, rank=2):
    layer = LoRALinear(Linear(in_f, out_f, rng=rng), rank=rank, rng=rng)
    # Give B non-zero weights so ΔW is non-trivial.
    layer.lora_b.data = rng.normal(size=layer.lora_b.shape).astype(np.float32)
    return layer


class TestForward:
    def test_fresh_adapter_is_identity_delta(self, rng):
        base = Linear(6, 4, rng=rng)
        ref = base(Tensor(np.eye(6, dtype=np.float32))).data.copy()
        lora = LoRALinear(base, rank=2, rng=rng)  # B = 0 at init
        out = lora(Tensor(np.eye(6, dtype=np.float32))).data
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_bypass_adds_low_rank_term(self, rng):
        layer = make_lora(rng)
        x = rng.normal(size=(3, 8)).astype(np.float32)
        out = layer(Tensor(x)).data
        expected = layer.base(Tensor(x)).data + x @ layer.delta_w()
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_base_frozen_adapter_trains(self, rng):
        layer = make_lora(rng)
        layer(Tensor(rng.normal(size=(2, 8)), requires_grad=True)).sum().backward()
        assert layer.base.weight.grad is None
        assert layer.lora_a.grad is not None
        assert layer.lora_b.grad is not None

    def test_rank_validation(self, rng):
        with pytest.raises(ValueError):
            LoRALinear(Linear(4, 4, rng=rng), rank=0)
        with pytest.raises(ValueError):
            LoRALinear(Linear(4, 4, rng=rng), rank=8)


class TestMergeUnmerge:
    def test_merge_preserves_outputs(self, rng):
        layer = make_lora(rng)
        x = rng.normal(size=(5, 8)).astype(np.float32)
        before = layer(Tensor(x)).data.copy()
        layer.merge()
        after = layer(Tensor(x)).data
        np.testing.assert_allclose(before, after, atol=1e-4)

    def test_unmerge_restores_base(self, rng):
        layer = make_lora(rng)
        w0 = layer.base.weight.data.copy()
        layer.merge()
        layer.unmerge()
        np.testing.assert_allclose(layer.base.weight.data, w0, atol=1e-5)

    def test_double_merge_rejected(self, rng):
        layer = make_lora(rng)
        layer.merge()
        with pytest.raises(RuntimeError):
            layer.merge()

    def test_unmerge_without_merge_rejected(self, rng):
        with pytest.raises(RuntimeError):
            make_lora(rng).unmerge()

    def test_merged_flag(self, rng):
        layer = make_lora(rng)
        assert not layer.merged
        layer.merge()
        assert layer.merged


class TestSwap:
    def test_snapshot_load_roundtrip(self, rng):
        layer = make_lora(rng)
        x = rng.normal(size=(2, 8)).astype(np.float32)
        snap = layer.snapshot()
        out0 = layer(Tensor(x)).data.copy()
        layer.reset(rng)
        assert not np.allclose(layer(Tensor(x)).data, out0)
        layer.load(snap)
        np.testing.assert_allclose(layer(Tensor(x)).data, out0, atol=1e-6)

    def test_snapshot_is_detached(self, rng):
        layer = make_lora(rng)
        snap = layer.snapshot()
        layer.lora_a.data += 1.0
        assert not np.allclose(snap.a, layer.lora_a.data)

    def test_load_while_merged_rejected(self, rng):
        layer = make_lora(rng)
        snap = layer.snapshot()
        layer.merge()
        with pytest.raises(RuntimeError):
            layer.load(snap)

    def test_load_shape_mismatch_rejected(self, rng):
        layer = make_lora(rng)
        other = make_lora(rng, in_f=8, out_f=8, rank=4)
        with pytest.raises(ValueError):
            layer.load(other.snapshot())

    def test_snapshot_delta_w_matches_layer(self, rng):
        layer = make_lora(rng)
        np.testing.assert_allclose(
            layer.snapshot().delta_w(), layer.delta_w(), atol=1e-6
        )

    def test_reset_zeroes_delta(self, rng):
        layer = make_lora(rng)
        layer.reset(rng)
        np.testing.assert_allclose(layer.delta_w(), 0.0, atol=1e-7)


class TestDeLoRAIdentity:
    """§4.4.2: out_x = in_x (W_merge - W_deLoRA1 + W_LoRAx) = in_x (W_base + W_LoRAx)."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_identity_with_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        d = 6
        w_base = rng.normal(size=(d, d)).astype(np.float32)
        dw1 = (rng.normal(size=(d, 2)) @ rng.normal(size=(2, d))).astype(np.float32)
        dwx = (rng.normal(size=(d, 2)) @ rng.normal(size=(2, d))).astype(np.float32)
        x = rng.normal(size=(4, d)).astype(np.float32)
        via_mixture = delora_output(x, w_base, dw1, dwx)
        direct = x @ (w_base + dwx)
        np.testing.assert_allclose(via_mixture, direct, atol=1e-3)

    def test_identity_with_real_lora_layers(self, rng):
        """End-to-end: adapter 1 merged, adapter x answered via deLoRA."""
        base = Linear(8, 8, rng=rng)
        w_base = base.weight.data.copy()
        lora1 = make_lora(rng)
        lorax = make_lora(rng)
        x = rng.normal(size=(3, 8)).astype(np.float32)
        out = delora_output(x, w_base, lora1.delta_w(), lorax.delta_w())
        np.testing.assert_allclose(
            out, x @ (w_base + lorax.delta_w()), atol=1e-3
        )
