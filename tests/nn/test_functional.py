"""Tests for nn.functional helpers."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.functional import (
    accuracy,
    dropout,
    global_grad_norm,
    label_smoothing_cross_entropy,
    num_parameters,
    one_hot,
    top_k_accuracy,
    train_test_split,
)


class TestLabels:
    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_validation(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_accuracy(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0], [2.0, 0.0]]))
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_top_k(self):
        logits = Tensor(np.array([[3.0, 2.0, 1.0], [1.0, 2.0, 3.0]]))
        assert top_k_accuracy(logits, np.array([1, 0]), k=2) == \
            pytest.approx(0.5)
        assert top_k_accuracy(logits, np.array([1, 0]), k=3) == 1.0
        with pytest.raises(ValueError):
            top_k_accuracy(logits, np.array([0, 0]), k=0)


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_inverted_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 50)))
        out = dropout(x, 0.3, rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
        # Dropped entries are exactly zero; kept are scaled by 1/(1-p).
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.7, rtol=1e-5)

    def test_gradient_flows_through_mask(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones((8, 8)), requires_grad=True)
        dropout(x, 0.5, rng).sum().backward()
        assert x.grad is not None
        assert set(np.round(np.unique(x.grad), 5)) <= {0.0, 2.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(2)), 1.0, np.random.default_rng(0))


class TestSmoothedCE:
    def test_zero_smoothing_matches_hard(self):
        rng = np.random.default_rng(0)
        logits_val = rng.normal(size=(5, 4)).astype(np.float32)
        labels = np.array([0, 1, 2, 3, 0])
        from repro.nn.layers import cross_entropy
        hard = cross_entropy(Tensor(logits_val), labels).item()
        smooth0 = label_smoothing_cross_entropy(
            Tensor(logits_val), labels, smoothing=0.0
        ).item()
        assert smooth0 == pytest.approx(hard, rel=1e-6)

    def test_smoothing_penalizes_overconfidence(self):
        confident = Tensor(np.array([[20.0, 0.0, 0.0]]))
        labels = np.array([0])
        hard = label_smoothing_cross_entropy(confident, labels, 0.0).item()
        smooth = label_smoothing_cross_entropy(confident, labels, 0.2).item()
        assert smooth > hard

    def test_backward_runs(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 4)),
                        requires_grad=True)
        label_smoothing_cross_entropy(
            logits, np.array([0, 1, 2]), 0.1
        ).backward()
        assert logits.grad is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            label_smoothing_cross_entropy(
                Tensor(np.zeros((1, 2))), np.array([0]), smoothing=1.0
            )


class TestBookkeeping:
    def test_num_parameters(self):
        params = [Tensor(np.zeros((2, 3))), Tensor(np.zeros(5))]
        assert num_parameters(params) == 11

    def test_global_grad_norm(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        a.grad = np.full(3, 2.0, dtype=np.float32)
        assert global_grad_norm([a, b]) == pytest.approx(np.sqrt(12.0))

    def test_train_test_split(self):
        x = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        xtr, ytr, xte, yte = train_test_split(x, y, 0.3,
                                              np.random.default_rng(0))
        assert xtr.shape[0] == 7 and xte.shape[0] == 3
        # Pairs stay aligned.
        for xi, yi in zip(xtr, ytr):
            assert xi[0] == 2 * yi

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(3), 0.5)
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5)
