"""Tests for TinyLMM: forward paths, heads, and LoRA management."""

import numpy as np
import pytest

from repro.nn import Adam, TaskHead, TinyLMM, TinyLMMConfig


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


@pytest.fixture()
def model(rng):
    return TinyLMM(TinyLMMConfig(feature_dim=8, dim=16, num_layers=1,
                                 num_heads=2, vocab_size=12, max_patches=4),
                   rng=rng)


def batch(model, rng, n=6):
    cfg = model.config
    x = rng.normal(size=(n, cfg.max_patches, cfg.feature_dim)).astype(np.float32)
    prompts = rng.integers(0, cfg.num_prompts, n)
    labels = rng.integers(0, 5, n)
    return x, prompts, labels


class TestForward:
    def test_lm_logits_shape(self, model, rng):
        x, p, _ = batch(model, rng)
        assert model.lm_logits(x, p).shape == (6, 12)

    def test_feature_validation(self, model, rng):
        with pytest.raises(ValueError):
            model.forward_features(np.zeros((2, 4, 99)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            model.forward_features(np.zeros((2, 99, 8)), np.zeros(2, dtype=int))

    def test_prompt_conditions_output(self, model, rng):
        x, p, _ = batch(model, rng)
        out_a = model.lm_logits(x, np.zeros(6, dtype=int)).data
        out_b = model.lm_logits(x, np.ones(6, dtype=int)).data
        assert not np.allclose(out_a, out_b)

    def test_deterministic_forward(self, model, rng):
        x, p, _ = batch(model, rng)
        a = model.lm_logits(x, p).data
        b = model.lm_logits(x, p).data
        np.testing.assert_allclose(a, b)


class TestTaskHeads:
    def test_register_and_use(self, model, rng):
        model.add_task_head("action", 7, rng=rng)
        x, p, _ = batch(model, rng)
        assert model.task_logits(x, p, "action").shape == (6, 7)

    def test_duplicate_rejected(self, model, rng):
        model.add_task_head("a", 3, rng=rng)
        with pytest.raises(ValueError):
            model.add_task_head("a", 3, rng=rng)

    def test_unknown_head_rejected(self, model, rng):
        x, p, _ = batch(model, rng)
        with pytest.raises(KeyError):
            model.task_logits(x, p, "missing")

    def test_head_min_classes(self):
        with pytest.raises(ValueError):
            TaskHead(8, 1)


class TestLoRAManagement:
    def test_add_lora_freezes_base(self, model, rng):
        model.add_lora(2, rng=rng)
        lora_params = {id(p) for p in model.lora_parameters()}
        for p in model.parameters():
            if p.requires_grad:
                assert id(p) in lora_params

    def test_double_install_rejected(self, model, rng):
        model.add_lora(2, rng=rng)
        with pytest.raises(RuntimeError):
            model.add_lora(2, rng=rng)

    def test_projector_included_by_default(self, model, rng):
        layers = model.add_lora(2, rng=rng)
        # 1 projector + 2 per block (q, v) x 1 block.
        assert len(layers) == 3

    def test_projector_opt_out(self, model, rng):
        layers = model.add_lora(2, rng=rng, include_projector=False)
        assert len(layers) == 2

    def test_snapshot_roundtrip(self, model, rng):
        model.add_lora(2, rng=rng)
        x, p, y = batch(model, rng)
        opt = Adam(model.lora_parameters(), lr=1e-2)
        for _ in range(5):
            loss = model.loss(x, p, y)
            opt.zero_grad(); loss.backward(); opt.step()
        snap = model.lora_snapshot()
        out = model.lm_logits(x, p).data.copy()
        model.lora_reset(rng)
        model.lora_load(snap)
        np.testing.assert_allclose(model.lm_logits(x, p).data, out, atol=1e-5)

    def test_snapshot_count_validated(self, model, rng):
        model.add_lora(2, rng=rng)
        with pytest.raises(ValueError):
            model.lora_load(model.lora_snapshot()[:-1])

    def test_merge_unmerge_preserve_logits(self, model, rng):
        model.add_lora(2, rng=rng)
        x, p, y = batch(model, rng)
        opt = Adam(model.lora_parameters(), lr=1e-2)
        for _ in range(5):
            loss = model.loss(x, p, y)
            opt.zero_grad(); loss.backward(); opt.step()
        before = model.lm_logits(x, p).data.copy()
        model.merge_loras()
        np.testing.assert_allclose(model.lm_logits(x, p).data, before,
                                   atol=1e-4)
        model.unmerge_loras()
        np.testing.assert_allclose(model.lm_logits(x, p).data, before,
                                   atol=1e-4)

    def test_lora_training_reduces_loss(self, model, rng):
        model.add_lora(2, rng=rng)
        x, p, y = batch(model, rng, n=24)
        initial = model.loss(x, p, y).item()
        opt = Adam(model.lora_parameters(), lr=5e-3)
        for _ in range(30):
            loss = model.loss(x, p, y)
            opt.zero_grad(); loss.backward(); opt.step()
        assert model.loss(x, p, y).item() < initial

    def test_accuracy_and_loss_heads_agree(self, model, rng):
        model.add_task_head("h", 5, rng=rng)
        x, p, y = batch(model, rng)
        acc = model.accuracy(x, p, y, head_name="h")
        assert 0.0 <= acc <= 1.0
        assert model.loss(x, p, y, head_name="h").item() > 0
